//! The staged compile pipeline: `DegreeInference → Placement →
//! BridgeInsertion → Balance → Schedule → CommOpt`.
//!
//! Whale's Fig. 5 describes planning as a sequence of distinct phases; this
//! module makes that sequence explicit. Each phase is a [`PlannerPass`] that
//! consumes earlier typed artifacts from a [`CompileState`] blackboard and
//! deposits its own:
//!
//! | pass              | artifact             | contents |
//! |-------------------|----------------------|----------|
//! | `DegreeInference` | [`InferredDegrees`]  | plan-level DP groups + per-group batches |
//! | `Placement`       | [`PlacedTaskGraphs`] | stage cuts, virtual devices, boundary bytes |
//! | `BridgeInsertion` | [`BridgedPlan`]      | inter-stage send bytes + bridge collectives |
//! | `Balance`         | [`BalancedStages`]   | per-device work + gradient-sync groups |
//! | `Schedule`        | `ExecutionPlan`      | assembled, validated plan |
//! | `CommOpt`         | (plan rewrite)       | bucketed grad-sync schedule + collective algorithms |
//!
//! The decomposition is **bit-identical** to the retained monolith
//! ([`crate::planner::plan_reference`]): every pass body is transplanted
//! code, and the only reordering — computing bridge collectives *before*
//! per-device balancing instead of after — is sound because bridges read
//! only placement artifacts, and the Schedule pass appends them to the
//! per-stage collective lists in the monolith's exact `(source stage, plan
//! replica)` order.
//!
//! Why bother: passes become individually cacheable and re-runnable. A
//! [`crate::cache::PlanCache`] stores the whole [`CompileState`] keyed on
//! content fingerprints, and [`replan`] re-runs only the passes a
//! [`ClusterDelta`] invalidates — a GPU degradation keeps degrees, placement
//! and bridges, re-running just Balance + Schedule on the new device rates.

use std::sync::Arc;

use whale_graph::CostProfile;
use whale_hardware::{Cluster, ClusterDelta, Collective, VirtualDevice};
use whale_ir::{Primitive, TaskGraph, WhaleIr};

use crate::bridge::{chain_bytes, connect};
use crate::error::{PlanError, Result};
use crate::plan::{CollectiveTask, ExecutionPlan, PlannedStage};
use crate::planner::{
    auto_stages, resolve_devices, stage_boundary_bytes, PlanTgArgs, PlannerConfig, ScheduleKind,
};

/// Identity of one compile pass, in pipeline order.
///
/// The derived `Ord` follows declaration order, which **is** the execution
/// order — [`CompilePipeline::run_from`] relies on it to decide which passes
/// to (re-)run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PassId {
    /// Infer plan-level DP degree and split the batch across plan replicas.
    DegreeInference,
    /// Resolve stage cuts (auto-partition) and per-TaskGraph virtual devices.
    Placement,
    /// Compute inter-stage activation traffic and bridge collectives.
    BridgeInsertion,
    /// Hardware-aware per-device load balancing + gradient-sync groups.
    Balance,
    /// Assemble and validate the final [`ExecutionPlan`].
    Schedule,
    /// Derive the bucketed grad-sync schedule (fusion buckets + collective
    /// algorithm selection) and attach it to the plan.
    CommOpt,
}

impl PassId {
    /// All passes in execution order.
    pub const ALL: [PassId; 6] = [
        PassId::DegreeInference,
        PassId::Placement,
        PassId::BridgeInsertion,
        PassId::Balance,
        PassId::Schedule,
        PassId::CommOpt,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PassId::DegreeInference => "degree-inference",
            PassId::Placement => "placement",
            PassId::BridgeInsertion => "bridge-insertion",
            PassId::Balance => "balance",
            PassId::Schedule => "schedule",
            PassId::CommOpt => "comm-opt",
        }
    }
}

/// Artifact of [`PassId::DegreeInference`]: how many plan replicas exist and
/// how the global batch divides among them.
#[derive(Debug, Clone, PartialEq)]
pub struct InferredDegrees {
    /// Plan-level data-parallel degree (1 without `outer_replica`).
    pub outer_dp: usize,
    /// GPU ids of each plan replica, contiguous slices of the cluster.
    pub groups: Vec<Vec<usize>>,
    /// Per-replica mini-batch (flops-weighted when hardware-aware).
    pub group_batches: Vec<usize>,
    /// Micro batches per mini batch (1 without a pipeline).
    pub num_micro: usize,
    /// Whether the schedule is GPipe-style (affects in-flight accounting).
    pub gpipe: bool,
}

/// Artifact of [`PassId::Placement`]: concrete TaskGraphs and their device
/// mapping inside plan replica 0.
#[derive(Debug, Clone)]
pub struct PlacedTaskGraphs {
    /// Stage TaskGraphs in execution order (auto-partitioned if requested).
    pub task_graphs: Vec<TaskGraph>,
    /// Per-stage cost profiles handed back by the memoized auto-partition
    /// (`None` when stages were given explicitly — Balance re-profiles).
    pub stage_profiles: Option<Vec<CostProfile>>,
    /// Virtual device of each TaskGraph within plan replica 0.
    pub vds0: Vec<VirtualDevice>,
    /// Memoized per-stage exit-tensor byte totals (`None` when memoization
    /// is off or TaskGraphs overlap; consumers fall back to `exit_tensors`).
    pub boundary_sums: Option<Vec<u64>>,
}

/// Artifact of [`PassId::BridgeInsertion`]: everything that crosses a stage
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct BridgedPlan {
    /// Per-stage activation bytes sent to the next stage per micro batch
    /// (0 for the last stage).
    pub send_bytes: Vec<u64>,
    /// Bridge collectives as `(target stage, task)`, in the monolith's
    /// insertion order: outer loop over source stage, inner over plan
    /// replica.
    pub bridges: Vec<(usize, CollectiveTask)>,
}

/// Artifact of [`PassId::Balance`]: fully balanced stages (device work and
/// in-stage collectives) plus raw gradient-sync groups.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancedStages {
    /// Planned stages, one per TaskGraph, with bridge collectives already
    /// appended to their target stages (sound because `BridgeInsertion`
    /// precedes `Balance`, so bridges can never change without this pass
    /// rerunning). Behind an [`Arc`] so the Schedule pass assembles the
    /// final plan by sharing, not cloning, the per-stage vectors.
    pub stages: Arc<Vec<PlannedStage>>,
    /// Gradient-sync collectives, fully materialized (single-GPU groups
    /// already dropped) and [`Arc`]-shared with the plan for the same
    /// reason as `stages`.
    pub grad_syncs: Arc<Vec<CollectiveTask>>,
}

/// Blackboard of per-pass artifacts. Each slot is `None` until its pass has
/// run; invalidating a pass clears its slot and every later one.
#[derive(Debug, Clone, Default)]
pub struct CompileState {
    /// [`PassId::DegreeInference`] output.
    pub degrees: Option<InferredDegrees>,
    /// [`PassId::Placement`] output.
    pub placement: Option<PlacedTaskGraphs>,
    /// [`PassId::BridgeInsertion`] output.
    pub bridged: Option<BridgedPlan>,
    /// [`PassId::Balance`] output.
    pub balanced: Option<BalancedStages>,
    /// [`PassId::Schedule`] output: the finished plan, behind an [`Arc`] so
    /// cache hits and concurrent readers share it without a deep clone.
    pub plan: Option<Arc<ExecutionPlan>>,
    /// Every pass executed on this state, in order, across all (re-)runs.
    /// Cache hits return states without growing this log — tests use it to
    /// prove that a hit runs zero passes.
    pub passes_run: Vec<PassId>,
}

impl CompileState {
    /// Drop the artifacts of `start` and every later pass, keeping earlier
    /// ones for reuse.
    pub fn invalidate_from(&mut self, start: PassId) {
        if start <= PassId::DegreeInference {
            self.degrees = None;
        }
        if start <= PassId::Placement {
            self.placement = None;
        }
        if start <= PassId::BridgeInsertion {
            self.bridged = None;
        }
        if start <= PassId::Balance {
            self.balanced = None;
        }
        // CommOpt rewrites the plan in place (idempotently), so a
        // CommOpt-only invalidation keeps the scheduled plan for it to
        // re-derive the sync schedule from.
        if start <= PassId::Schedule {
            self.plan = None;
        }
    }

    /// Shared handle on the finished plan (an O(1) refcount bump).
    ///
    /// Panics if the Schedule pass has not run; every cached state and every
    /// state returned by [`compile`]/[`CompilePipeline::run_from`] holds a
    /// plan.
    pub fn plan_arc(&self) -> Arc<ExecutionPlan> {
        self.plan
            .clone()
            .expect("finished compile states always hold a plan")
    }

    pub(crate) fn missing(dep: PassId, of: PassId) -> PlanError {
        PlanError::BadConfig(format!(
            "compile pipeline ran `{}` without the `{}` artifact (pass ordering bug)",
            of.name(),
            dep.name()
        ))
    }
}

/// Immutable inputs shared by every pass.
#[derive(Debug, Clone, Copy)]
pub struct PassContext<'a> {
    /// The annotated model.
    pub ir: &'a WhaleIr,
    /// The target cluster. During [`replan`] this is the *post-delta*
    /// cluster, so re-run passes see the new device rates.
    pub cluster: &'a Cluster,
    /// Planner options.
    pub config: &'a PlannerConfig,
}

/// One compile pass: reads earlier artifacts from the state, writes its own.
pub trait PlannerPass {
    /// Which pipeline slot this pass fills.
    fn id(&self) -> PassId;
    /// Execute, depositing this pass's artifact into `state`.
    fn run(&self, cx: &PassContext<'_>, state: &mut CompileState) -> Result<()>;
}

/// Pass 1: validate the IR, infer the plan-level DP degree, and split the
/// global batch across plan replicas (flops-weighted when hardware-aware).
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeInference;

impl PlannerPass for DegreeInference {
    fn id(&self) -> PassId {
        PassId::DegreeInference
    }

    fn run(&self, cx: &PassContext<'_>, state: &mut CompileState) -> Result<()> {
        let (ir, cluster, config) = (cx.ir, cx.cluster, cx.config);
        ir.validate()?;
        let num_gpus = cluster.num_gpus();
        if num_gpus == 0 {
            return Err(PlanError::BadConfig("empty cluster".into()));
        }

        // Plan-level data parallelism: split the cluster into `outer_dp`
        // contiguous groups.
        let outer_dp = if ir.outer_replica {
            let r = if config.outer_dp == 0 {
                cluster.num_nodes()
            } else {
                config.outer_dp
            };
            if r == 0 || !num_gpus.is_multiple_of(r) {
                return Err(PlanError::BadConfig(format!(
                    "{num_gpus} GPUs not divisible into {r} plan replicas"
                )));
            }
            r
        } else {
            1
        };
        let group_size = num_gpus / outer_dp;
        let groups: Vec<Vec<usize>> = (0..outer_dp)
            .map(|g| (g * group_size..(g + 1) * group_size).collect())
            .collect();

        // Split the global batch across plan replicas.
        let group_weights: Vec<f64> = if config.hardware_aware {
            groups
                .iter()
                .map(|g| g.iter().map(|&id| cluster.gpus()[id].flops()).sum())
                .collect()
        } else {
            vec![1.0; outer_dp]
        };
        let group_batches = crate::partition::proportional_split(ir.global_batch, &group_weights)?;

        state.degrees = Some(InferredDegrees {
            outer_dp,
            groups,
            group_batches,
            num_micro: ir.pipeline.map(|p| p.num_micro_batches).unwrap_or(1),
            gpipe: config.schedule == ScheduleKind::GPipe,
        });
        Ok(())
    }
}

/// Pass 2: resolve TaskGraphs (auto-partition pipelines with the
/// hardware-aware balanced cut) and map each to a virtual device.
#[derive(Debug, Clone, Copy, Default)]
pub struct Placement;

impl PlannerPass for Placement {
    fn id(&self) -> PassId {
        PassId::Placement
    }

    fn run(&self, cx: &PassContext<'_>, state: &mut CompileState) -> Result<()> {
        let (ir, cluster, config) = (cx.ir, cx.cluster, cx.config);
        let d = state
            .degrees
            .as_ref()
            .ok_or_else(|| CompileState::missing(PassId::DegreeInference, self.id()))?;

        // The memoized partition hands back the per-stage profiles it
        // already computed for the final cuts; Balance then skips its own
        // re-profiling pass (bit-identical: same op ranges, same reference
        // batch).
        let (task_graphs, stage_profiles): (Vec<TaskGraph>, Option<Vec<CostProfile>>) =
            if ir.auto_partition && ir.task_graphs.is_empty() {
                auto_stages(
                    ir,
                    cluster,
                    config,
                    &d.groups[0],
                    d.group_batches[0],
                    d.num_micro,
                    d.gpipe,
                )?
            } else {
                (ir.task_graphs.clone(), None)
            };
        if task_graphs.is_empty() {
            return Err(PlanError::BadIr("no TaskGraphs to plan".into()));
        }

        let vds0 = resolve_devices(config, &d.groups[0], &task_graphs, ir.pipeline.is_some())?;

        // Boundary bytes: `exit_tensors` rescans the whole graph per
        // TaskGraph, an O(stages × ops) term that dominates deep-pipeline
        // planning. The memoized path replaces those scans with one pass
        // over the graph's edges; per-producer byte sums are u64, so the two
        // computations are exactly equal, not just approximately.
        let boundary_sums = if config.memoize {
            stage_boundary_bytes(&ir.graph, &task_graphs)
        } else {
            None
        };

        state.placement = Some(PlacedTaskGraphs {
            task_graphs,
            stage_profiles,
            vds0,
            boundary_sums,
        });
        Ok(())
    }
}

/// Pass 3: compute inter-stage activation traffic and the bridge
/// collectives between TaskGraphs of different parallelism (Figs. 7-9).
#[derive(Debug, Clone, Copy, Default)]
pub struct BridgeInsertion;

impl PlannerPass for BridgeInsertion {
    fn id(&self) -> PassId {
        PassId::BridgeInsertion
    }

    fn run(&self, cx: &PassContext<'_>, state: &mut CompileState) -> Result<()> {
        let ir = cx.ir;
        let d = state
            .degrees
            .as_ref()
            .ok_or_else(|| CompileState::missing(PassId::DegreeInference, self.id()))?;
        let p = state
            .placement
            .as_ref()
            .ok_or_else(|| CompileState::missing(PassId::Placement, self.id()))?;
        let num_stages = p.task_graphs.len();

        // Inter-stage boundary bytes per micro batch (at the first group's
        // batch; groups are symmetric by construction).
        let mut send_bytes = Vec::with_capacity(num_stages);
        for (tg_idx, tg) in p.task_graphs.iter().enumerate() {
            let boundary: u64 = match &p.boundary_sums {
                Some(v) => v[tg_idx],
                None => tg
                    .exit_tensors(&ir.graph)
                    .iter()
                    .map(|(_, bytes)| bytes)
                    .sum(),
            };
            let micro_scale = if ir.global_batch > 0 {
                d.group_batches[0] as f64 / (d.num_micro as f64 * ir.global_batch as f64)
            } else {
                0.0
            };
            send_bytes.push(if tg_idx + 1 < num_stages {
                (boundary as f64 * micro_scale) as u64
            } else {
                0
            });
        }

        // Bridges between consecutive TaskGraphs (only meaningful outside
        // strict stage→stage pipelines, where the pattern is Identity
        // anyway).
        let mut bridges = Vec::new();
        for i in 0..num_stages.saturating_sub(1) {
            let (a, b) = (&p.task_graphs[i], &p.task_graphs[i + 1]);
            let deg_a = p.vds0[i].num_gpus();
            let deg_b = p.vds0[i + 1].num_gpus();
            // Same virtual device at equal degree: the tensor is already
            // distributed exactly as the consumer expects (the MoE layout —
            // replica output feeds the co-located shard directly; the split
            // pattern's own AllToAll performs any redistribution), so the
            // Gather/Partition pair fuses away entirely (Fig. 8).
            if deg_a == deg_b && p.vds0[i] == p.vds0[i + 1] {
                continue;
            }
            let chain = connect(a.innermost(), deg_a, b.innermost(), deg_b);
            if chain.is_empty() {
                continue;
            }
            let boundary: u64 = match &p.boundary_sums {
                Some(v) => v[i],
                None => a.exit_tensors(&ir.graph).iter().map(|(_, b)| b).sum(),
            };
            let micro_scale =
                d.group_batches[0] as f64 / (d.num_micro as f64 * ir.global_batch.max(1) as f64);
            let moved = (chain_bytes(&chain, boundary) as f64 * micro_scale) as u64;
            if moved == 0 {
                continue;
            }
            for (g, group) in d.groups.iter().enumerate() {
                let offset = group[0] - d.groups[0][0];
                let mut union: Vec<usize> = p.vds0[i]
                    .gpu_ids()
                    .iter()
                    .chain(p.vds0[i + 1].gpu_ids())
                    .map(|&id| id + offset)
                    .collect();
                union.sort_unstable();
                union.dedup();
                bridges.push((
                    i + 1,
                    CollectiveTask {
                        kind: Collective::Broadcast,
                        group: union,
                        bytes: moved,
                        label: format!("bridge tg{i}→tg{} (replica {g})", i + 1),
                        stage: Some(i + 1),
                    },
                ));
            }
        }

        state.bridged = Some(BridgedPlan {
            send_bytes,
            bridges,
        });
        Ok(())
    }
}

/// Pass 4: hardware-aware load balancing — per-device batch/shard
/// assignment for every TaskGraph on every plan replica, plus gradient-sync
/// groups.
#[derive(Debug, Clone, Copy, Default)]
pub struct Balance;

impl PlannerPass for Balance {
    fn id(&self) -> PassId {
        PassId::Balance
    }

    fn run(&self, cx: &PassContext<'_>, state: &mut CompileState) -> Result<()> {
        let (ir, cluster, config) = (cx.ir, cx.cluster, cx.config);
        let d = state
            .degrees
            .as_ref()
            .ok_or_else(|| CompileState::missing(PassId::DegreeInference, self.id()))?;
        let p = state
            .placement
            .as_ref()
            .ok_or_else(|| CompileState::missing(PassId::Placement, self.id()))?;
        let br = state
            .bridged
            .as_ref()
            .ok_or_else(|| CompileState::missing(PassId::BridgeInsertion, self.id()))?;
        let num_stages = p.task_graphs.len();

        let mut stages: Vec<PlannedStage> = Vec::with_capacity(num_stages);
        let mut grad_groups: Vec<(String, Vec<usize>, u64, usize)> = Vec::new();
        // Run-scoped memo: dp-partition and split-pattern results repeat
        // across plan replicas (and across same-signature device slices on
        // heterogeneous clusters); replaying them is bit-identical because
        // both subroutines are pure (see `balance_memo`).
        let mut memo = crate::balance_memo::BalanceMemo::default();
        let mut vd_gpus: Vec<usize> = Vec::new();

        for (tg_idx, tg) in p.task_graphs.iter().enumerate() {
            let profile = match &p.stage_profiles {
                Some(ps) => ps[tg_idx].clone(),
                None => tg.profile(&ir.graph, ir.global_batch.max(1)),
            };
            let mut devices = Vec::new();
            let mut collectives = Vec::new();

            for (g, group) in d.groups.iter().enumerate() {
                let offset = group[0];
                vd_gpus.clear();
                vd_gpus.extend(
                    p.vds0[tg_idx]
                        .gpu_ids()
                        .iter()
                        .map(|&id| id - d.groups[0][0] + offset),
                );
                for &id in &vd_gpus {
                    if !group.contains(&id) {
                        return Err(PlanError::BadDeviceAssignment(format!(
                            "virtual device GPU {id} outside plan replica {g}"
                        )));
                    }
                }
                crate::balance_memo::plan_taskgraph_memo(
                    PlanTgArgs {
                        ir,
                        cluster,
                        config,
                        tg,
                        profile: &profile,
                        vd_gpus: &vd_gpus,
                        group_batch: d.group_batches[g],
                        num_micro: d.num_micro,
                        stage_index: tg_idx,
                        num_stages,
                        gpipe: d.gpipe,
                        outer_dp: d.outer_dp,
                    },
                    &mut memo,
                    &mut devices,
                    &mut collectives,
                )?;
            }

            // Gradient-sync groups: GPUs at the same (replica/shard)
            // position across plan replicas, or across DP replicas within a
            // group.
            crate::balance_memo::build_grad_groups_fast(
                tg,
                &profile,
                &p.vds0[tg_idx],
                &d.groups,
                config,
                &mut grad_groups,
            );

            let dp_degree = match tg.strategies.as_slice() {
                [] | [Primitive::Replica] => p.vds0[tg_idx].num_gpus() * d.outer_dp,
                [Primitive::Split] => d.outer_dp,
                _ => d.outer_dp,
            }
            .max(1);
            stages.push(PlannedStage {
                index: tg_idx,
                devices,
                send_bytes_per_micro: br.send_bytes[tg_idx],
                collectives_per_micro: collectives,
                param_bytes: profile.param_bytes,
                dp_degree,
            });
        }

        // Append bridge collectives here rather than in Schedule: bridges
        // come from an *earlier* pass, so any change to them invalidates
        // Balance too, and folding them in lets Schedule share the stage
        // vector without a deep clone.
        for (target, task) in &br.bridges {
            stages[*target].collectives_per_micro.push(task.clone());
        }

        // Materialize the gradient syncs too (they derive purely from this
        // pass's groups), moving label and group storage instead of
        // cloning it at schedule time.
        let grad_syncs = grad_groups
            .into_iter()
            .filter(|(_, group, _, _)| group.len() > 1)
            .map(|(label, group, bytes, stage)| CollectiveTask {
                kind: Collective::AllReduce,
                group,
                bytes,
                label,
                stage: Some(stage),
            })
            .collect();

        state.balanced = Some(BalancedStages {
            stages: Arc::new(stages),
            grad_syncs: Arc::new(grad_syncs),
        });
        Ok(())
    }
}

/// Pass 5: assemble the final [`ExecutionPlan`] — materialize gradient
/// syncs from the balanced stages and validate against the cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct Schedule;

impl PlannerPass for Schedule {
    fn id(&self) -> PassId {
        PassId::Schedule
    }

    fn run(&self, cx: &PassContext<'_>, state: &mut CompileState) -> Result<()> {
        let d = state
            .degrees
            .as_ref()
            .ok_or_else(|| CompileState::missing(PassId::DegreeInference, self.id()))?;
        let bal = state
            .balanced
            .as_ref()
            .ok_or_else(|| CompileState::missing(PassId::Balance, self.id()))?;

        // Share rather than clone: the Balance artifact stays intact (and
        // allocation-free to reuse) for a later Schedule-only re-run, e.g.
        // a link-bandwidth delta.
        let plan = ExecutionPlan {
            name: cx.ir.graph.name().to_string(),
            global_batch: cx.ir.global_batch,
            num_micro_batches: d.num_micro,
            stages: Arc::clone(&bal.stages),
            grad_syncs: Arc::clone(&bal.grad_syncs),
            grad_sync_schedule: None,
            training: cx.config.training,
            efficiency: cx.config.efficiency,
        };
        plan.validate(cx.cluster)?;
        state.plan = Some(Arc::new(plan));
        Ok(())
    }
}

/// An ordered sequence of [`PlannerPass`]es.
pub struct CompilePipeline {
    passes: Vec<Box<dyn PlannerPass + Send + Sync>>,
}

impl CompilePipeline {
    /// The standard six-pass Whale pipeline.
    pub fn standard() -> CompilePipeline {
        CompilePipeline {
            passes: vec![
                Box::new(DegreeInference),
                Box::new(Placement),
                Box::new(BridgeInsertion),
                Box::new(Balance),
                Box::new(Schedule),
                Box::new(crate::commopt::CommOpt),
            ],
        }
    }

    /// Build a pipeline from an explicit pass list (for swapping or
    /// instrumenting individual passes). Passes must be in strictly
    /// ascending [`PassId`] order.
    pub fn with_passes(passes: Vec<Box<dyn PlannerPass + Send + Sync>>) -> Result<CompilePipeline> {
        for w in passes.windows(2) {
            if w[0].id() >= w[1].id() {
                return Err(PlanError::BadConfig(format!(
                    "pipeline passes out of order: `{}` before `{}`",
                    w[0].id().name(),
                    w[1].id().name()
                )));
            }
        }
        Ok(CompilePipeline { passes })
    }

    /// Pass ids in execution order.
    pub fn pass_ids(&self) -> Vec<PassId> {
        self.passes.iter().map(|p| p.id()).collect()
    }

    /// Run every pass from scratch on a fresh state.
    pub fn run(&self, cx: &PassContext<'_>) -> Result<CompileState> {
        let mut state = CompileState::default();
        self.run_from(cx, &mut state, PassId::DegreeInference)?;
        Ok(state)
    }

    /// Invalidate `start` and everything after it, then re-run those passes
    /// on `state`, reusing every earlier artifact as-is.
    pub fn run_from(
        &self,
        cx: &PassContext<'_>,
        state: &mut CompileState,
        start: PassId,
    ) -> Result<()> {
        state.invalidate_from(start);
        state.passes_run.reserve(self.passes.len());
        for pass in &self.passes {
            if pass.id() >= start {
                pass.run(cx, state)?;
                state.passes_run.push(pass.id());
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for CompilePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompilePipeline")
            .field("passes", &self.pass_ids())
            .finish()
    }
}

/// Compile `ir` onto `cluster` with the standard pipeline, returning the
/// full artifact state (use [`plan()`](crate::plan()) if only the plan is
/// needed).
///
/// The standard pipeline is stateless (unit-struct passes), so one shared
/// instance serves every compile — rebuilding the boxed pass list per call
/// is measurable overhead under the auto-parallel search, which plans
/// dozens of leaves back to back.
pub fn compile(ir: &WhaleIr, cluster: &Cluster, config: &PlannerConfig) -> Result<CompileState> {
    static STANDARD: std::sync::OnceLock<CompilePipeline> = std::sync::OnceLock::new();
    STANDARD
        .get_or_init(CompilePipeline::standard)
        .run(&PassContext {
            ir,
            cluster,
            config,
        })
}

/// The earliest pass a [`ClusterDelta`] invalidates.
///
/// The matrix (see DESIGN.md §8):
///
/// * **structural** deltas (GPU added/removed) change the device set, so
///   degree inference, placement — everything — must re-run;
/// * **rate** deltas (degrade/restore) keep the device set; the elastic
///   approximation keeps stage cuts and bridges and re-runs Balance so
///   batch/shard assignments track the new throughput, then Schedule;
/// * **link-bandwidth** deltas change no quantity the planner writes into
///   the plan (bandwidth is consumed by the simulator/cost models), so only
///   the final assembly+validation re-runs.
pub fn invalidation_start(delta: &ClusterDelta) -> PassId {
    match delta {
        ClusterDelta::GpuAdded { .. } | ClusterDelta::GpuRemoved { .. } => PassId::DegreeInference,
        ClusterDelta::GpuDegraded { .. } | ClusterDelta::GpuRestored { .. } => PassId::Balance,
        ClusterDelta::LinkBandwidth { .. } => PassId::Schedule,
    }
}

/// Re-plan after a cluster change, re-running only the invalidated passes.
///
/// `state` must come from a prior [`compile`]/[`replan`] of the same `ir`
/// and `config`; `cluster` is the **post-delta** cluster (apply the delta
/// with [`Cluster::apply_delta`] first). For a degradation this re-runs
/// Balance + Schedule on the cached bridged plan — measurably cheaper than
/// a cold plan (see `replan_bench`).
pub fn replan(
    ir: &WhaleIr,
    cluster: &Cluster,
    config: &PlannerConfig,
    state: &mut CompileState,
    delta: &ClusterDelta,
) -> Result<Arc<ExecutionPlan>> {
    let cx = PassContext {
        ir,
        cluster,
        config,
    };
    CompilePipeline::standard().run_from(&cx, state, invalidation_start(delta))?;
    Ok(state.plan_arc())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_reference;
    use whale_graph::models;
    use whale_ir::Annotator;

    fn bert_ir() -> WhaleIr {
        let g = models::bert_base(32, 64).unwrap();
        Annotator::new(g, 32)
            .auto_pipeline(4)
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn pipeline_matches_reference_plan() {
        let ir = bert_ir();
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let a = crate::planner::plan(&ir, &cluster, &cfg).unwrap();
        let b = plan_reference(&ir, &cluster, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compile_exposes_all_artifacts() {
        let ir = bert_ir();
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let state = compile(&ir, &cluster, &cfg).unwrap();
        assert!(state.degrees.is_some());
        assert!(state.placement.is_some());
        assert!(state.bridged.is_some());
        assert!(state.balanced.is_some());
        assert!(state.plan.is_some());
        assert_eq!(state.passes_run, PassId::ALL.to_vec());
        let p = state.placement.as_ref().unwrap();
        assert_eq!(p.task_graphs.len(), 4);
        assert_eq!(p.vds0.len(), 4);
    }

    #[test]
    fn degradation_replan_matches_cold_plan_structure() {
        let ir = bert_ir();
        let mut cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut state = compile(&ir, &cluster, &cfg).unwrap();
        let cold_stages = state.plan.as_ref().unwrap().stages.len();

        let delta = ClusterDelta::GpuDegraded { id: 1, scale: 0.5 };
        cluster.apply_delta(delta).unwrap();
        let replanned = replan(&ir, &cluster, &cfg, &mut state, &delta).unwrap();

        // Structure is kept (elastic approximation), only Balance+Schedule
        // re-ran.
        assert_eq!(replanned.stages.len(), cold_stages);
        assert_eq!(
            &state.passes_run[PassId::ALL.len()..],
            &[PassId::Balance, PassId::Schedule, PassId::CommOpt]
        );
        replanned.validate(&cluster).unwrap();
    }

    #[test]
    fn structural_delta_reruns_everything() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let mut cluster = Cluster::parse("1x(4xV100)").unwrap();
        let cfg = PlannerConfig::default();
        let mut state = compile(&ir, &cluster, &cfg).unwrap();

        let delta = ClusterDelta::GpuRemoved { id: 3 };
        cluster.apply_delta(delta).unwrap();
        let replanned = replan(&ir, &cluster, &cfg, &mut state, &delta).unwrap();
        assert_eq!(replanned.stages[0].devices.len(), 3);
        assert_eq!(&state.passes_run[PassId::ALL.len()..], &PassId::ALL);
        // A full re-run equals a cold plan on the new cluster exactly.
        assert_eq!(
            *replanned,
            crate::planner::plan(&ir, &cluster, &cfg).unwrap()
        );
    }

    #[test]
    fn link_delta_reruns_schedule_only() {
        let ir = bert_ir();
        let mut cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut state = compile(&ir, &cluster, &cfg).unwrap();
        let before = state.plan.clone().unwrap();

        let delta = ClusterDelta::LinkBandwidth {
            kind: whale_hardware::LinkKind::Network,
            bytes_per_sec: 1.25e9,
        };
        cluster.apply_delta(delta).unwrap();
        let after = replan(&ir, &cluster, &cfg, &mut state, &delta).unwrap();
        assert_eq!(
            &state.passes_run[PassId::ALL.len()..],
            &[PassId::Schedule, PassId::CommOpt]
        );
        // The plan itself carries no bandwidths — identical output; the
        // simulator picks the new rates up from the cluster.
        assert_eq!(before, after);
    }

    #[test]
    fn out_of_order_pipeline_rejected() {
        let err =
            CompilePipeline::with_passes(vec![Box::new(Placement), Box::new(DegreeInference)])
                .unwrap_err();
        assert!(matches!(err, PlanError::BadConfig(_)));
    }

    #[test]
    fn pass_order_is_total() {
        for w in PassId::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
