//! Content-addressed plan cache.
//!
//! A production plan service answers many repeated requests: the same model
//! on the same cluster with the same options must not re-run the planner.
//! [`PlanCache`] keys full [`CompileState`]s (not just plans — so cached
//! artifacts can seed a delta-replan) on [`PlanKey`], the triple of content
//! fingerprints of the planner's inputs. Hit/miss/pass counters are exposed
//! for the Session, CLI, and auto-parallel search to report.

use std::collections::HashMap;
use std::collections::VecDeque;

use whale_fp::Fingerprint;
use whale_hardware::{Cluster, ClusterDelta};
use whale_ir::WhaleIr;

use crate::error::Result;
use crate::pipeline::{
    compile, invalidation_start, CompilePipeline, CompileState, PassContext, PassId,
};
use crate::plan::ExecutionPlan;
use crate::planner::PlannerConfig;

/// Cache key: content fingerprints of the three planner inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`WhaleIr::fingerprint`] of the annotated model.
    pub ir: Fingerprint,
    /// [`Cluster::fingerprint`] of the target cluster.
    pub cluster: Fingerprint,
    /// [`PlannerConfig::fingerprint`] of the options.
    pub config: Fingerprint,
}

impl PlanKey {
    /// Fingerprint all three planner inputs.
    pub fn new(ir: &WhaleIr, cluster: &Cluster, config: &PlannerConfig) -> PlanKey {
        PlanKey {
            ir: ir.fingerprint(),
            cluster: cluster.fingerprint(),
            config: config.fingerprint(),
        }
    }
}

impl std::fmt::Display for PlanKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.ir, self.cluster, self.config)
    }
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered entirely from cache (zero passes run).
    pub hits: u64,
    /// Requests that ran the full pipeline from scratch.
    pub misses: u64,
    /// Delta-replans that reused cached artifacts and re-ran only the
    /// invalidated suffix of the pipeline.
    pub partial_hits: u64,
    /// Total compile passes executed on behalf of this cache.
    pub passes_run: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups (full hits only), 0.0 when idle.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses + self.partial_hits;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits {} · misses {} · partial {} · passes {} · evictions {}",
            self.hits, self.misses, self.partial_hits, self.passes_run, self.evictions
        )
    }
}

/// Bounded FIFO cache of compile states keyed by content fingerprints.
#[derive(Debug)]
pub struct PlanCache {
    entries: HashMap<PlanKey, CompileState>,
    order: VecDeque<PlanKey>,
    capacity: usize,
    stats: CacheStats,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(PlanCache::DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// Default entry bound; a CompileState is a few hundred KB at most, so
    /// this keeps the cache well under typical service memory budgets.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// Create a cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Plan through the cache: a key hit returns the stored plan without
    /// running any pass; a miss compiles, stores the full artifact state,
    /// and returns the fresh plan.
    pub fn plan(
        &mut self,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
    ) -> Result<ExecutionPlan> {
        let key = PlanKey::new(ir, cluster, config);
        if let Some(state) = self.entries.get(&key) {
            self.stats.hits += 1;
            return Ok(state
                .plan
                .clone()
                .expect("cached states always hold a finished plan"));
        }
        let state = compile(ir, cluster, config)?;
        self.stats.misses += 1;
        self.stats.passes_run += state.passes_run.len() as u64;
        let plan = state
            .plan
            .clone()
            .expect("compile() runs Schedule, which sets `plan`");
        self.insert(key, state);
        Ok(plan)
    }

    /// Re-plan after `delta`, reusing cached artifacts where possible.
    ///
    /// `cluster` is the **pre-delta** cluster (the one prior plans were
    /// keyed on); the updated cluster is returned alongside the new plan.
    /// If the pre-delta state is cached, only the passes invalidated by the
    /// delta re-run (a degradation re-runs Balance + Schedule); otherwise
    /// this degenerates to a cold compile on the post-delta cluster. The
    /// result is stored under the post-delta key, so a later `plan()`
    /// against the updated cluster is a pure hit.
    pub fn replan(
        &mut self,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
        delta: ClusterDelta,
    ) -> Result<(ExecutionPlan, Cluster)> {
        let old_key = PlanKey::new(ir, cluster, config);
        let mut after = cluster.clone();
        after.apply_delta(delta)?;
        let new_key = PlanKey::new(ir, &after, config);

        if let Some(state) = self.entries.get(&new_key) {
            self.stats.hits += 1;
            let plan = state
                .plan
                .clone()
                .expect("cached states always hold a finished plan");
            return Ok((plan, after));
        }

        let (mut state, start) = match self.entries.get(&old_key) {
            Some(cached) => (cached.clone(), invalidation_start(&delta)),
            None => (CompileState::default(), PassId::DegreeInference),
        };
        let passes_before = state.passes_run.len();
        let cx = PassContext {
            ir,
            cluster: &after,
            config,
        };
        CompilePipeline::standard().run_from(&cx, &mut state, start)?;
        let plan = state
            .plan
            .clone()
            .expect("run_from re-runs Schedule, which sets `plan`");
        let ran = state.passes_run.len() - passes_before;
        self.stats.passes_run += ran as u64;
        if start > PassId::DegreeInference {
            self.stats.partial_hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.insert(new_key, state);
        Ok((plan, after))
    }

    /// Direct lookup of a cached state (no counters touched).
    pub fn peek(&self, key: &PlanKey) -> Option<&CompileState> {
        self.entries.get(key)
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the counters, keeping entries.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    fn insert(&mut self, key: PlanKey, state: CompileState) {
        if self.entries.insert(key, state).is_none() {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_ir::Annotator;

    fn resnet_ir(batch: usize) -> WhaleIr {
        let g = models::resnet50(batch).unwrap();
        Annotator::new(g, batch)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn hit_runs_no_passes() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::default();

        let first = cache.plan(&ir, &cluster, &cfg).unwrap();
        let after_miss = cache.stats();
        assert_eq!((after_miss.hits, after_miss.misses), (0, 1));
        assert_eq!(after_miss.passes_run, PassId::ALL.len() as u64);

        let second = cache.plan(&ir, &cluster, &cfg).unwrap();
        let after_hit = cache.stats();
        assert_eq!((after_hit.hits, after_hit.misses), (1, 1));
        assert_eq!(
            after_hit.passes_run, after_miss.passes_run,
            "a hit must not run any pass"
        );
        assert_eq!(first, second);
    }

    #[test]
    fn different_inputs_are_different_entries() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::default();
        cache.plan(&resnet_ir(64), &cluster, &cfg).unwrap();
        cache.plan(&resnet_ir(32), &cluster, &cfg).unwrap();
        let other = Cluster::parse("2xV100").unwrap();
        cache.plan(&resnet_ir(64), &other, &cfg).unwrap();
        let hw_off = PlannerConfig {
            hardware_aware: false,
            ..PlannerConfig::default()
        };
        cache.plan(&resnet_ir(64), &cluster, &hw_off).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn replan_is_a_partial_hit_and_seeds_the_new_key() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::default();
        cache.plan(&ir, &cluster, &cfg).unwrap();

        let delta = ClusterDelta::GpuDegraded { id: 0, scale: 0.5 };
        let (replanned, after) = cache.replan(&ir, &cluster, &cfg, delta).unwrap();
        let s = cache.stats();
        assert_eq!(s.partial_hits, 1);
        // Balance + Schedule only, on top of the 5 cold passes.
        assert_eq!(s.passes_run, 5 + 2);
        // Degraded GPU 0 now gets the smallest share.
        let dev = &replanned.stages[0].devices;
        assert!(dev[0].samples_per_step < dev[1].samples_per_step);

        // The post-delta key is now hot.
        let again = cache.plan(&ir, &after, &cfg).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(again, replanned);
    }

    #[test]
    fn replan_without_cached_state_degenerates_to_cold() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::default();
        let delta = ClusterDelta::GpuDegraded { id: 0, scale: 0.5 };
        let (plan, after) = cache.replan(&ir, &cluster, &cfg, delta).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().partial_hits, 0);
        assert_eq!(plan, crate::planner::plan(&ir, &after, &cfg).unwrap());
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::new(2);
        cache.plan(&resnet_ir(16), &cluster, &cfg).unwrap();
        cache.plan(&resnet_ir(32), &cluster, &cfg).unwrap();
        cache.plan(&resnet_ir(64), &cluster, &cfg).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The oldest entry (batch 16) was evicted → miss again.
        cache.plan(&resnet_ir(16), &cluster, &cfg).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }
}
