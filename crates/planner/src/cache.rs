//! Content-addressed plan cache.
//!
//! A production plan service answers many repeated requests: the same model
//! on the same cluster with the same options must not re-run the planner.
//! [`PlanCache`] keys full [`CompileState`]s (not just plans — so cached
//! artifacts can seed a delta-replan) on [`PlanKey`], the triple of content
//! fingerprints of the planner's inputs. Entries are stored behind [`Arc`],
//! so a hit is an O(1) refcount bump — no artifact or plan is ever deep-
//! cloned on the read path. Hit/miss/pass counters are exposed for the
//! Session, CLI, and auto-parallel search to report.
//!
//! `PlanCache` itself is single-threaded (`&mut self`); the concurrent
//! front end — sharding and single-flight miss deduplication — lives in
//! [`crate::service::PlanService`], which composes one `PlanCache` per
//! shard.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use whale_fp::Fingerprint;
use whale_hardware::{Cluster, ClusterDelta};
use whale_ir::WhaleIr;

use crate::error::Result;
use crate::pipeline::{
    compile, invalidation_start, CompilePipeline, CompileState, PassContext, PassId,
};
use crate::plan::ExecutionPlan;
use crate::planner::PlannerConfig;

/// Cache key: content fingerprints of the three planner inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`WhaleIr::fingerprint`] of the annotated model.
    pub ir: Fingerprint,
    /// [`Cluster::fingerprint`] of the target cluster.
    pub cluster: Fingerprint,
    /// [`PlannerConfig::fingerprint`] of the options.
    pub config: Fingerprint,
}

impl PlanKey {
    /// Fingerprint all three planner inputs.
    pub fn new(ir: &WhaleIr, cluster: &Cluster, config: &PlannerConfig) -> PlanKey {
        PlanKey {
            ir: ir.fingerprint(),
            cluster: cluster.fingerprint(),
            config: config.fingerprint(),
        }
    }

    /// Stable 64-bit mix of the three fingerprints, used to pick a
    /// [`crate::service::PlanService`] shard. FNV-style multiply-xor so
    /// keys differing in any one input land on uncorrelated shards.
    pub fn shard_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for part in [self.ir.0, self.cluster.0, self.config.0] {
            h ^= part;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl std::fmt::Display for PlanKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.ir, self.cluster, self.config)
    }
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered entirely from cache (zero passes run).
    pub hits: u64,
    /// Requests that ran the full pipeline from scratch (a compile that
    /// *fails* still counts as a miss — the passes were attempted — but
    /// stores no entry).
    pub misses: u64,
    /// Delta-replans that reused cached artifacts and re-ran only the
    /// invalidated suffix of the pipeline.
    pub partial_hits: u64,
    /// Requests that arrived while another request was already compiling
    /// the same key and blocked on that in-flight result instead of
    /// compiling themselves (single-flight deduplication; see
    /// [`crate::service::PlanService`]). Always 0 for a plain `PlanCache`.
    pub coalesced: u64,
    /// Total compile passes executed on behalf of this cache.
    pub passes_run: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total requests accounted: every lookup lands in exactly one of
    /// `hits`, `misses`, `partial_hits`, or `coalesced`.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses + self.partial_hits + self.coalesced
    }

    /// Hit ratio over all requests (full hits only, coalesced requests
    /// count toward the denominator — they did not hit the cache, they
    /// drafted behind a miss).
    ///
    /// Defined as exactly `0.0` when no request has been recorded: an idle
    /// cache has no hit rate, and returning `0.0` (rather than the `NaN` a
    /// bare float division would produce) keeps the value safe to plot,
    /// serialize, and compare.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Field-wise sum, for aggregating per-shard counters.
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            partial_hits: self.partial_hits + other.partial_hits,
            coalesced: self.coalesced + other.coalesced,
            passes_run: self.passes_run + other.passes_run,
            evictions: self.evictions + other.evictions,
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits {} · misses {} · partial {} · coalesced {} · passes {} · evictions {}",
            self.hits,
            self.misses,
            self.partial_hits,
            self.coalesced,
            self.passes_run,
            self.evictions
        )
    }
}

/// Bounded FIFO cache of compile states keyed by content fingerprints.
#[derive(Debug)]
pub struct PlanCache {
    entries: HashMap<PlanKey, Arc<CompileState>>,
    order: VecDeque<PlanKey>,
    capacity: usize,
    stats: CacheStats,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(PlanCache::DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    /// Default entry bound; a CompileState is a few hundred KB at most, so
    /// this keeps the cache well under typical service memory budgets.
    pub const DEFAULT_CAPACITY: usize = 512;

    /// Create a cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Plan through the cache: a key hit returns the stored plan without
    /// running any pass (a shared handle, not a copy); a miss compiles,
    /// stores the full artifact state, and returns the fresh plan.
    pub fn plan(
        &mut self,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
    ) -> Result<Arc<ExecutionPlan>> {
        let key = PlanKey::new(ir, cluster, config);
        self.plan_keyed(key, ir, cluster, config)
    }

    /// [`PlanCache::plan`] with a caller-computed key. The key must equal
    /// `PlanKey::new(ir, cluster, config)`; services that admit requests by
    /// key use this to fingerprint once per request instead of once per
    /// lookup.
    pub fn plan_keyed(
        &mut self,
        key: PlanKey,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
    ) -> Result<Arc<ExecutionPlan>> {
        if let Some(state) = self.lookup(&key) {
            return Ok(state.plan_arc());
        }
        let state = match compile(ir, cluster, config) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                self.stats.misses += 1;
                return Err(e);
            }
        };
        let plan = state.plan_arc();
        self.admit_miss(key, state);
        Ok(plan)
    }

    /// Re-plan after `delta`, reusing cached artifacts where possible.
    ///
    /// `cluster` is the **pre-delta** cluster (the one prior plans were
    /// keyed on); the updated cluster is returned alongside the new plan.
    /// If the pre-delta state is cached, only the passes invalidated by the
    /// delta re-run (a degradation re-runs Balance + Schedule); otherwise
    /// this degenerates to a cold compile on the post-delta cluster. The
    /// result is stored under the post-delta key, so a later `plan()`
    /// against the updated cluster is a pure hit.
    pub fn replan(
        &mut self,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
        delta: ClusterDelta,
    ) -> Result<(Arc<ExecutionPlan>, Cluster)> {
        let old_key = PlanKey::new(ir, cluster, config);
        let mut after = cluster.clone();
        after.apply_delta(delta)?;
        let new_key = PlanKey::new(ir, &after, config);

        if let Some(state) = self.lookup(&new_key) {
            return Ok((state.plan_arc(), after));
        }

        let seed = self.peek(&old_key).cloned();
        let (state, ran, partial) = replan_from_seed(seed, ir, &after, config, &delta)?;
        let plan = state.plan_arc();
        self.admit_replan(new_key, state, ran, partial);
        Ok((plan, after))
    }

    /// Look `key` up, counting a hit when present. Returns a shared handle;
    /// absent keys record nothing (the caller decides whether the miss is
    /// compiled here or coalesced onto an in-flight compile).
    pub fn lookup(&mut self, key: &PlanKey) -> Option<Arc<CompileState>> {
        let found = self.entries.get(key).cloned();
        if found.is_some() {
            self.stats.hits += 1;
        }
        found
    }

    /// Direct lookup of a cached state (no counters touched).
    pub fn peek(&self, key: &PlanKey) -> Option<&Arc<CompileState>> {
        self.entries.get(key)
    }

    /// Store a freshly compiled state and account the miss.
    pub fn admit_miss(&mut self, key: PlanKey, state: Arc<CompileState>) {
        self.stats.misses += 1;
        self.stats.passes_run += state.passes_run.len() as u64;
        self.insert(key, state);
    }

    /// Account a miss whose compile failed (no entry to store).
    pub fn note_failed_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Account a request that coalesced onto an in-flight compile of the
    /// same key instead of compiling itself (single-flight deduplication).
    pub fn note_coalesced(&mut self) {
        self.stats.coalesced += 1;
    }

    /// Store a replanned state: `ran` passes executed, `partial` when a
    /// cached prefix was reused (otherwise the replan was a cold compile).
    pub fn admit_replan(
        &mut self,
        key: PlanKey,
        state: Arc<CompileState>,
        ran: usize,
        partial: bool,
    ) {
        self.stats.passes_run += ran as u64;
        if partial {
            self.stats.partial_hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.insert(key, state);
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the counters, keeping entries.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    fn insert(&mut self, key: PlanKey, state: Arc<CompileState>) {
        if self.entries.insert(key, state).is_none() {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
    }
}

/// Run the delta-replan pipeline outside any cache lock: clone the cached
/// pre-delta artifacts (or start cold), re-run the invalidated suffix on
/// the **post-delta** cluster, and report `(state, passes_ran, partial)`.
/// Shared by [`PlanCache::replan`] and the single-flight leaders of
/// [`crate::service::PlanService`].
pub fn replan_from_seed(
    seed: Option<Arc<CompileState>>,
    ir: &WhaleIr,
    after: &Cluster,
    config: &PlannerConfig,
    delta: &ClusterDelta,
) -> Result<(Arc<CompileState>, usize, bool)> {
    let (mut state, start) = match seed {
        Some(cached) => ((*cached).clone(), invalidation_start(delta)),
        None => (CompileState::default(), PassId::DegreeInference),
    };
    let passes_before = state.passes_run.len();
    let cx = PassContext {
        ir,
        cluster: after,
        config,
    };
    CompilePipeline::standard().run_from(&cx, &mut state, start)?;
    let ran = state.passes_run.len() - passes_before;
    let partial = start > PassId::DegreeInference;
    Ok((Arc::new(state), ran, partial))
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_ir::Annotator;

    fn resnet_ir(batch: usize) -> WhaleIr {
        let g = models::resnet50(batch).unwrap();
        Annotator::new(g, batch)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn hit_runs_no_passes() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::default();

        let first = cache.plan(&ir, &cluster, &cfg).unwrap();
        let after_miss = cache.stats();
        assert_eq!((after_miss.hits, after_miss.misses), (0, 1));
        assert_eq!(after_miss.passes_run, PassId::ALL.len() as u64);

        let second = cache.plan(&ir, &cluster, &cfg).unwrap();
        let after_hit = cache.stats();
        assert_eq!((after_hit.hits, after_hit.misses), (1, 1));
        assert_eq!(
            after_hit.passes_run, after_miss.passes_run,
            "a hit must not run any pass"
        );
        assert_eq!(first, second);
        // Zero-copy: the hit returned the same allocation, not a clone.
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn different_inputs_are_different_entries() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::default();
        cache.plan(&resnet_ir(64), &cluster, &cfg).unwrap();
        cache.plan(&resnet_ir(32), &cluster, &cfg).unwrap();
        let other = Cluster::parse("2xV100").unwrap();
        cache.plan(&resnet_ir(64), &other, &cfg).unwrap();
        let hw_off = PlannerConfig {
            hardware_aware: false,
            ..PlannerConfig::default()
        };
        cache.plan(&resnet_ir(64), &cluster, &hw_off).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn replan_is_a_partial_hit_and_seeds_the_new_key() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::default();
        cache.plan(&ir, &cluster, &cfg).unwrap();

        let delta = ClusterDelta::GpuDegraded { id: 0, scale: 0.5 };
        let (replanned, after) = cache.replan(&ir, &cluster, &cfg, delta).unwrap();
        let s = cache.stats();
        assert_eq!(s.partial_hits, 1);
        // Balance + Schedule + CommOpt only, on top of the 6 cold passes.
        assert_eq!(s.passes_run, 6 + 3);
        // Degraded GPU 0 now gets the smallest share.
        let dev = &replanned.stages[0].devices;
        assert!(dev[0].samples_per_step < dev[1].samples_per_step);

        // The post-delta key is now hot.
        let again = cache.plan(&ir, &after, &cfg).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(again, replanned);
    }

    #[test]
    fn replan_without_cached_state_degenerates_to_cold() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::default();
        let delta = ClusterDelta::GpuDegraded { id: 0, scale: 0.5 };
        let (plan, after) = cache.replan(&ir, &cluster, &cfg, delta).unwrap();
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().partial_hits, 0);
        assert_eq!(*plan, crate::planner::plan(&ir, &after, &cfg).unwrap());
    }

    #[test]
    fn capacity_bound_evicts_fifo() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let mut cache = PlanCache::new(2);
        cache.plan(&resnet_ir(16), &cluster, &cfg).unwrap();
        cache.plan(&resnet_ir(32), &cluster, &cfg).unwrap();
        cache.plan(&resnet_ir(64), &cluster, &cfg).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The oldest entry (batch 16) was evicted → miss again.
        cache.plan(&resnet_ir(16), &cluster, &cfg).unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn hit_ratio_handles_zero_requests_and_counts_coalesced() {
        let idle = CacheStats::default();
        assert_eq!(idle.requests(), 0);
        assert_eq!(idle.hit_ratio(), 0.0, "idle cache must report 0.0, not NaN");
        assert!(idle.hit_ratio().is_finite());

        let busy = CacheStats {
            hits: 6,
            misses: 2,
            partial_hits: 1,
            coalesced: 3,
            ..CacheStats::default()
        };
        assert_eq!(busy.requests(), 12);
        assert!((busy.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_merge_is_fieldwise() {
        let a = CacheStats {
            hits: 1,
            misses: 2,
            partial_hits: 3,
            coalesced: 4,
            passes_run: 5,
            evictions: 6,
        };
        let sum = a.merge(&a);
        assert_eq!(sum.hits, 2);
        assert_eq!(sum.misses, 4);
        assert_eq!(sum.partial_hits, 6);
        assert_eq!(sum.coalesced, 8);
        assert_eq!(sum.passes_run, 10);
        assert_eq!(sum.evictions, 12);
        assert_eq!(sum.requests(), 20);
    }

    #[test]
    fn shard_hash_spreads_distinct_keys() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let keys: Vec<PlanKey> = [16, 32, 64, 128]
            .iter()
            .map(|&b| PlanKey::new(&resnet_ir(b), &cluster, &cfg))
            .collect();
        let hashes: std::collections::HashSet<u64> = keys.iter().map(|k| k.shard_hash()).collect();
        assert_eq!(hashes.len(), keys.len(), "distinct keys, distinct hashes");
    }
}
