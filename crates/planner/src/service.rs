//! Concurrent compile service: a sharded, single-flight plan cache.
//!
//! [`crate::cache::PlanCache`] is single-threaded by design. Funneling a
//! multi-tenant planning service through one `Mutex<PlanCache>` has two
//! costs that grow with client count:
//!
//! 1. **a global serial section** — every request, hit or miss, queues on
//!    one lock; and
//! 2. **redundant compiles** — N concurrent misses for the same key run N
//!    identical compiles, N−1 of which are thrown away.
//!
//! [`PlanService`] removes both. The key space is split by
//! [`PlanKey::shard_hash`] across `S` independently locked shards, each a
//! plain `PlanCache`, so requests for different keys proceed in parallel
//! and a hit holds its shard lock only for a map lookup plus an `Arc`
//! refcount bump (the plan itself is never copied — see
//! `CompileState::plan_arc`). Misses are **single-flight**: the first
//! requester for a key becomes the *leader*, registers an in-flight ticket
//! in the shard, and compiles *outside* the lock; every concurrent
//! requester for the same key finds the ticket, blocks on its condvar, and
//! receives the leader's result — including the error path, where all
//! waiters see a clone of the leader's [`PlanError`]. Coalesced requests
//! are counted in [`CacheStats::coalesced`].
//!
//! Lock discipline: a thread holds at most one shard lock at a time, and
//! never while compiling or while blocking on a flight, so the service
//! cannot deadlock and slow compiles on one key never delay hits on
//! another.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use whale_hardware::{Cluster, ClusterDelta};
use whale_ir::WhaleIr;

use crate::cache::{replan_from_seed, CacheStats, PlanCache, PlanKey};
use crate::error::{PlanError, Result};
use crate::pipeline::{compile, CompileState};
use crate::plan::ExecutionPlan;
use crate::planner::PlannerConfig;

/// One in-flight compile. The leader fills `result` exactly once and
/// notifies; waiters block on the condvar until it is set.
struct Flight {
    result: Mutex<Option<std::result::Result<Arc<CompileState>, PlanError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Publish the leader's result and wake every waiter.
    fn resolve(&self, result: std::result::Result<Arc<CompileState>, PlanError>) {
        let mut slot = lock_ignoring_poison(&self.result);
        *slot = Some(result);
        self.done.notify_all();
    }

    /// Block until the leader resolves, then return a shared copy.
    fn wait(&self) -> std::result::Result<Arc<CompileState>, PlanError> {
        let mut slot = lock_ignoring_poison(&self.result);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .done
                .wait(slot)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// One shard: a bounded cache plus the in-flight tickets for keys that
/// hash here.
struct Shard {
    cache: PlanCache,
    inflight: HashMap<PlanKey, Arc<Flight>>,
}

/// What the admission check under the shard lock decided for this request.
enum Admission {
    /// Cached: the request is done (hit already counted).
    Hit(Arc<CompileState>),
    /// Nothing cached or in flight: this thread compiles for everyone.
    Lead(Arc<Flight>),
    /// Another thread is compiling this key: wait for its flight.
    Coalesce(Arc<Flight>),
}

/// Clears a single-flight leader's in-flight ticket if the leader dies
/// before settling.
///
/// The leader compiles *outside* the shard lock; if that compile panics,
/// nothing on the unwind path would otherwise touch the shard, so the
/// ticket would sit in `inflight` forever and every coalesced waiter would
/// block on a flight nobody will resolve — and every *future* request for
/// the key would coalesce onto the same dead flight. The guard is armed
/// when leadership is taken and disarmed on the normal settle path; on a
/// panic-unwind drop it removes the ticket, accounts the abandoned
/// leadership as a failed miss (so the every-request-accounted invariant
/// holds: the leader's request landed, just unsuccessfully), and publishes
/// [`PlanError::Internal`] so waiters fail fast instead of hanging.
struct LeaderGuard<'a> {
    service: &'a PlanService,
    key: PlanKey,
    flight: Arc<Flight>,
    armed: bool,
}

impl<'a> LeaderGuard<'a> {
    fn new(service: &'a PlanService, key: PlanKey, flight: Arc<Flight>) -> LeaderGuard<'a> {
        LeaderGuard {
            service,
            key,
            flight,
            armed: true,
        }
    }

    /// The leader survived its compile; the settle path owns cleanup now.
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        {
            let mut shard = lock_ignoring_poison(self.service.shard_for(&self.key));
            shard.inflight.remove(&self.key);
            shard.cache.note_failed_miss();
        }
        self.flight.resolve(Err(PlanError::Internal(
            "compile leader panicked before publishing a result".into(),
        )));
    }
}

/// Sharded, single-flight, zero-copy-hit plan cache for concurrent use.
///
/// Cheap to share: `Session` clones hold one `PlanService` behind an `Arc`.
/// All methods take `&self`; internal locking is per shard.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use whale_graph::models;
/// use whale_hardware::Cluster;
/// use whale_ir::Annotator;
/// use whale_planner::{PlanService, PlannerConfig};
///
/// let g = models::resnet50(64).unwrap();
/// let ir = Annotator::new(g, 64).replicate_all().unwrap().finish().unwrap();
/// let cluster = Cluster::parse("4xV100").unwrap();
/// let cfg = PlannerConfig::default();
/// let service = Arc::new(PlanService::default());
///
/// let a = service.plan(&ir, &cluster, &cfg).unwrap();
/// let b = service.plan(&ir, &cluster, &cfg).unwrap();
/// assert!(Arc::ptr_eq(&a, &b)); // the hit copied nothing
/// let stats = service.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
pub struct PlanService {
    shards: Box<[Mutex<Shard>]>,
}

impl Default for PlanService {
    fn default() -> Self {
        PlanService::new(PlanService::DEFAULT_SHARDS, PlanCache::DEFAULT_CAPACITY)
    }
}

/// The caches hold no invariants a panicking planner could break half-way
/// (entries are inserted whole, flights resolve whole), so a poisoned lock
/// is safe to enter.
fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl PlanService {
    /// Default shard count: enough to make same-shard collisions rare for
    /// typical zoo×cluster working sets while keeping per-shard overhead
    /// negligible.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Create a service with `shards` independently locked shards (min 1),
    /// each bounded to `capacity_per_shard` entries.
    pub fn new(shards: usize, capacity_per_shard: usize) -> PlanService {
        let shards = shards.max(1);
        PlanService {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        cache: PlanCache::new(capacity_per_shard),
                        inflight: HashMap::new(),
                    })
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total cached entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_ignoring_poison(s).cache.len())
            .sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters aggregated across shards. Every request lands in exactly
    /// one of `hits`/`misses`/`partial_hits`/`coalesced`, so
    /// [`CacheStats::requests`] equals the number of `plan`/`replan` calls
    /// that have completed.
    pub fn stats(&self) -> CacheStats {
        self.shards
            .iter()
            .map(|s| lock_ignoring_poison(s).cache.stats())
            .fold(CacheStats::default(), |acc, s| acc.merge(&s))
    }

    /// Zero every shard's counters, keeping entries.
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            lock_ignoring_poison(shard).cache.reset_stats();
        }
    }

    /// Drop all entries (counters survive).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            lock_ignoring_poison(shard).cache.clear();
        }
    }

    fn shard_for(&self, key: &PlanKey) -> &Mutex<Shard> {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    /// Serve one plan request: zero-copy hit, or single-flight compile.
    pub fn plan(
        &self,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
    ) -> Result<Arc<ExecutionPlan>> {
        let key = PlanKey::new(ir, cluster, config);
        self.plan_keyed(key, ir, cluster, config)
    }

    /// [`PlanService::plan`] with a caller-computed key (`key` must equal
    /// `PlanKey::new(ir, cluster, config)`). Lets a front end that already
    /// fingerprinted the request — e.g. to route or log it — skip a second
    /// fingerprint pass on the hot path.
    pub fn plan_keyed(
        &self,
        key: PlanKey,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
    ) -> Result<Arc<ExecutionPlan>> {
        let state = self.state_keyed(key, ir, cluster, config)?;
        Ok(state.plan_arc())
    }

    /// Compile a burst of related requests, returning one result per
    /// request **in input order**.
    ///
    /// The batch is served smarter than a loop over [`PlanService::plan`]:
    ///
    /// 1. **One fingerprint pass.** Every request is keyed up front.
    ///    Requests in a burst typically share structure — the same model at
    ///    several batch sizes, the same cluster across models — and interned
    ///    graphs share block allocations, so the first fingerprint of a
    ///    block memoizes the content sum every later request reuses
    ///    (`BlockInst::content_sum` is computed once per allocation, not
    ///    once per request).
    /// 2. **Duplicates made adjacent.** Requests are processed in key order,
    ///    so repeated keys run back-to-back: the first becomes the compile
    ///    leader (or hits an existing entry) and every duplicate is a
    ///    zero-copy cache hit immediately after — no duplicate ever races a
    ///    cold shard, even on a fresh service.
    /// 3. **Keys reused.** Each compile/lookup goes through
    ///    [`PlanService::plan_keyed`] with the precomputed key, skipping a
    ///    second fingerprint pass.
    ///
    /// Failures are per-request: one bad request yields `Err` in its slot
    /// and leaves the rest of the batch untouched.
    pub fn compile_batch(
        &self,
        requests: &[(&WhaleIr, &Cluster, &PlannerConfig)],
    ) -> Vec<Result<Arc<ExecutionPlan>>> {
        let keys: Vec<PlanKey> = requests
            .iter()
            .map(|(ir, cluster, config)| PlanKey::new(ir, cluster, config))
            .collect();
        // Sort request indices so equal keys are adjacent (and same-shard
        // keys clustered); the sort is on the fingerprint words, not the
        // inputs, so it costs nothing beyond the fingerprints we already
        // have.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| {
            let k = &keys[i];
            (k.shard_hash(), k.ir.0, k.cluster.0, k.config.0)
        });
        let mut results: Vec<Option<Result<Arc<ExecutionPlan>>>> = vec![None; requests.len()];
        for &i in &order {
            let (ir, cluster, config) = requests[i];
            results[i] = Some(self.plan_keyed(keys[i], ir, cluster, config));
        }
        results
            .into_iter()
            .map(|r| r.expect("every index visited exactly once"))
            .collect()
    }

    /// Like [`PlanService::plan_keyed`] but returns the full artifact
    /// state (shared), so callers can inspect per-pass artifacts.
    pub fn state_keyed(
        &self,
        key: PlanKey,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
    ) -> Result<Arc<CompileState>> {
        match self.admit(key) {
            Admission::Hit(state) => Ok(state),
            Admission::Coalesce(flight) => Ok(flight.wait()?),
            Admission::Lead(flight) => {
                let guard = LeaderGuard::new(self, key, flight.clone());
                let compiled = compile(ir, cluster, config).map(Arc::new);
                guard.disarm();
                self.settle_miss(key, &flight, compiled)
            }
        }
    }

    /// Re-plan after `delta`, reusing cached pre-delta artifacts where
    /// possible (see [`PlanCache::replan`] for the caching semantics).
    /// Concurrent replans (and plans) for the same **post-delta** key are
    /// single-flight: one leader runs the invalidated pass suffix, the rest
    /// coalesce onto its result.
    pub fn replan(
        &self,
        ir: &WhaleIr,
        cluster: &Cluster,
        config: &PlannerConfig,
        delta: ClusterDelta,
    ) -> Result<(Arc<ExecutionPlan>, Cluster)> {
        let old_key = PlanKey::new(ir, cluster, config);
        let mut after = cluster.clone();
        after.apply_delta(delta)?;
        let new_key = PlanKey::new(ir, &after, config);

        match self.admit(new_key) {
            Admission::Hit(state) => Ok((state.plan_arc(), after)),
            Admission::Coalesce(flight) => Ok((flight.wait()?.plan_arc(), after)),
            Admission::Lead(flight) => {
                let guard = LeaderGuard::new(self, new_key, flight.clone());
                // The pre-delta seed may live on a different shard; a
                // thread only ever holds one shard lock at a time.
                let seed = {
                    let shard = lock_ignoring_poison(self.shard_for(&old_key));
                    shard.cache.peek(&old_key).cloned()
                };
                let outcome = replan_from_seed(seed, ir, &after, config, &delta);
                guard.disarm();
                let state = self.settle_replan(new_key, &flight, outcome)?;
                Ok((state.plan_arc(), after))
            }
        }
    }

    /// The admission check: one shard lock, three-way outcome.
    fn admit(&self, key: PlanKey) -> Admission {
        let mut shard = lock_ignoring_poison(self.shard_for(&key));
        if let Some(state) = shard.cache.lookup(&key) {
            return Admission::Hit(state);
        }
        if let Some(flight) = shard.inflight.get(&key).cloned() {
            shard.cache.note_coalesced();
            return Admission::Coalesce(flight);
        }
        let flight = Arc::new(Flight::new());
        shard.inflight.insert(key, flight.clone());
        Admission::Lead(flight)
    }

    /// Leader epilogue for a plain miss: admit the entry (or account the
    /// failure), retire the flight, publish the result.
    fn settle_miss(
        &self,
        key: PlanKey,
        flight: &Arc<Flight>,
        compiled: std::result::Result<Arc<CompileState>, PlanError>,
    ) -> Result<Arc<CompileState>> {
        {
            let mut shard = lock_ignoring_poison(self.shard_for(&key));
            shard.inflight.remove(&key);
            match &compiled {
                Ok(state) => shard.cache.admit_miss(key, state.clone()),
                Err(_) => shard.cache.note_failed_miss(),
            }
        }
        flight.resolve(compiled.clone());
        compiled
    }

    /// Leader epilogue for a replan: admit under the post-delta key with
    /// partial-hit accounting, retire the flight, publish the result.
    fn settle_replan(
        &self,
        key: PlanKey,
        flight: &Arc<Flight>,
        outcome: Result<(Arc<CompileState>, usize, bool)>,
    ) -> Result<Arc<CompileState>> {
        let compiled = {
            let mut shard = lock_ignoring_poison(self.shard_for(&key));
            shard.inflight.remove(&key);
            match outcome {
                Ok((state, ran, partial)) => {
                    shard.cache.admit_replan(key, state.clone(), ran, partial);
                    Ok(state)
                }
                Err(e) => {
                    shard.cache.note_failed_miss();
                    Err(e)
                }
            }
        };
        flight.resolve(compiled.clone());
        compiled
    }
}

impl std::fmt::Debug for PlanService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanService")
            .field("shards", &self.num_shards())
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassId;
    use whale_graph::models;
    use whale_ir::Annotator;

    fn resnet_ir(batch: usize) -> WhaleIr {
        let g = models::resnet50(batch).unwrap();
        Annotator::new(g, batch)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn hits_are_zero_copy_and_counted_per_service() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let service = PlanService::default();
        let a = service.plan(&ir, &cluster, &cfg).unwrap();
        let b = service.plan(&ir, &cluster, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = service.stats();
        assert_eq!((s.hits, s.misses, s.coalesced), (1, 1, 0));
        assert_eq!(s.requests(), 2);
        assert_eq!(service.len(), 1);
    }

    #[test]
    fn distinct_keys_spread_over_shards() {
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let service = PlanService::new(4, 64);
        for batch in [16, 32, 64, 128, 256] {
            service.plan(&resnet_ir(batch), &cluster, &cfg).unwrap();
        }
        assert_eq!(service.len(), 5);
        assert_eq!(service.stats().misses, 5);
        let occupied = (0..service.num_shards())
            .filter(|&i| !lock_ignoring_poison(&service.shards[i]).cache.is_empty())
            .count();
        assert!(occupied > 1, "5 keys should not all land on one shard");
    }

    #[test]
    fn concurrent_same_key_misses_compile_once() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let service = PlanService::default();
        let barrier = std::sync::Barrier::new(8);
        let plans: Vec<Arc<ExecutionPlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        service.plan(&ir, &cluster, &cfg).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for p in &plans[1..] {
            assert_eq!(plans[0], *p);
        }
        let s = service.stats();
        assert_eq!(s.misses, 1, "single-flight: exactly one compile");
        assert_eq!(
            s.passes_run,
            PassId::ALL.len() as u64,
            "only the leader ran the pipeline's passes"
        );
        assert_eq!(s.requests(), 8);
        assert_eq!(s.hits + s.coalesced, 7);
    }

    #[test]
    fn failed_compiles_propagate_to_all_waiters() {
        // Two explicit stages on 4 GPUs give each stage a 2-GPU virtual
        // device, which the planner rejects; every concurrent caller must
        // see the error, and nothing may be cached.
        let g = whale_graph::models::bert_base(8, 64).unwrap();
        let n = g.len();
        let ir = Annotator::new(g, 8)
            .pipeline(4)
            .unwrap()
            .annotate_range(0, n / 2, vec![whale_ir::Primitive::Stage])
            .unwrap()
            .annotate_range(n / 2, n, vec![whale_ir::Primitive::Stage])
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let service = PlanService::default();
        let barrier = std::sync::Barrier::new(4);
        let errors: Vec<PlanError> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        service.plan(&ir, &cluster, &cfg).unwrap_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(errors.len(), 4);
        for e in &errors[1..] {
            assert_eq!(&errors[0], e, "waiters clone the leader's error");
        }
        assert!(service.is_empty(), "failed compiles cache nothing");
        let s = service.stats();
        assert!(s.misses >= 1);
        assert_eq!(s.requests(), 4);
    }

    #[test]
    fn compile_batch_compiles_once_per_distinct_key_in_input_order() {
        let a = resnet_ir(64);
        let b = resnet_ir(128);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let service = PlanService::default();
        // Duplicates deliberately interleaved and out of key order.
        let requests: Vec<(&WhaleIr, &Cluster, &PlannerConfig)> = vec![
            (&b, &cluster, &cfg),
            (&a, &cluster, &cfg),
            (&b, &cluster, &cfg),
            (&a, &cluster, &cfg),
            (&a, &cluster, &cfg),
        ];
        let plans = service.compile_batch(&requests);
        assert_eq!(plans.len(), 5);
        let plans: Vec<Arc<ExecutionPlan>> = plans.into_iter().map(|p| p.unwrap()).collect();
        // Input order preserved: slots 0/2 are the batch-128 plan, 1/3/4 the
        // batch-64 plan, and duplicates share one allocation.
        assert!(Arc::ptr_eq(&plans[0], &plans[2]));
        assert!(Arc::ptr_eq(&plans[1], &plans[3]));
        assert!(Arc::ptr_eq(&plans[1], &plans[4]));
        assert!(!Arc::ptr_eq(&plans[0], &plans[1]));
        assert_eq!(plans[0].stages[0].devices[0].samples_per_step * 2, 64);
        let s = service.stats();
        assert_eq!(s.misses, 2, "one compile per distinct key");
        assert_eq!(s.hits, 3, "every duplicate is a zero-copy hit");
        assert_eq!(s.requests(), 5);
    }

    #[test]
    fn compile_batch_failures_are_per_request() {
        let good = resnet_ir(64);
        // Two explicit stages on 4 GPUs → 2-GPU virtual devices, rejected.
        let g = whale_graph::models::bert_base(8, 64).unwrap();
        let n = g.len();
        let bad = Annotator::new(g, 8)
            .pipeline(4)
            .unwrap()
            .annotate_range(0, n / 2, vec![whale_ir::Primitive::Stage])
            .unwrap()
            .annotate_range(n / 2, n, vec![whale_ir::Primitive::Stage])
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let service = PlanService::default();
        let requests: Vec<(&WhaleIr, &Cluster, &PlannerConfig)> = vec![
            (&good, &cluster, &cfg),
            (&bad, &cluster, &cfg),
            (&good, &cluster, &cfg),
        ];
        let results = service.compile_batch(&requests);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert_eq!(service.len(), 1, "failed compiles cache nothing");
    }

    #[test]
    fn panicking_leader_publishes_error_to_waiters_and_clears_ticket() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        let service = PlanService::default();
        let key = PlanKey::new(&ir, &cluster, &cfg);

        // Take leadership by hand so the panic lands in exactly the window
        // a real `compile` panic would: ticket registered, no shard lock
        // held, result not yet published.
        let flight = match service.admit(key) {
            Admission::Lead(f) => f,
            _ => unreachable!("fresh service must elect a leader"),
        };
        let waiter_err = std::thread::scope(|scope| {
            let waiter = scope.spawn(|| service.plan(&ir, &cluster, &cfg));
            // `coalesced` ticks under the shard lock at admission, so once
            // it reads 1 the waiter is bound to this flight.
            while service.stats().coalesced == 0 {
                std::thread::yield_now();
            }
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                let _guard = LeaderGuard::new(&service, key, flight.clone());
                panic!("compile exploded");
            }));
            assert!(unwound.is_err());
            waiter.join().unwrap().unwrap_err()
        });
        assert!(
            matches!(waiter_err, PlanError::Internal(_)),
            "waiter got {waiter_err}"
        );
        assert!(waiter_err.to_string().contains("panicked"), "{waiter_err}");

        // The ticket is gone: the next request elects a fresh leader and
        // compiles normally instead of coalescing onto a dead flight.
        let plan = service.plan(&ir, &cluster, &cfg).unwrap();
        assert!(!plan.stages.is_empty());
        let s = service.stats();
        assert_eq!(s.coalesced, 1);
        assert_eq!(
            s.misses, 2,
            "abandoned leadership is accounted as a failed miss"
        );
        assert_eq!(s.requests(), 3);
        assert_eq!(service.len(), 1, "only the successful compile is cached");
    }

    #[test]
    fn replan_seeds_the_post_delta_key_across_shards() {
        let ir = resnet_ir(64);
        let cluster = Cluster::parse("4xV100").unwrap();
        let cfg = PlannerConfig::default();
        // Two shards force old/new keys to often differ in shard.
        let service = PlanService::new(2, 64);
        service.plan(&ir, &cluster, &cfg).unwrap();
        let delta = ClusterDelta::GpuDegraded { id: 0, scale: 0.5 };
        let (replanned, after) = service.replan(&ir, &cluster, &cfg, delta).unwrap();
        let s = service.stats();
        assert_eq!(s.partial_hits, 1);
        assert_eq!(
            s.passes_run,
            6 + 3,
            "suffix replan ran Balance+Schedule+CommOpt"
        );
        let again = service.plan(&ir, &after, &cfg).unwrap();
        assert!(Arc::ptr_eq(&replanned, &again), "post-delta key is hot");
        assert_eq!(service.stats().hits, 1);
    }
}
