//! Bridge layers: connecting TaskGraphs with different parallelism (§3.4).
//!
//! Whale inserts `Partition(n)`, `Gather(n)`, and `Identity` bridges around
//! every TaskGraph according to its primitive's *bridge pattern* (Fig. 7),
//! then fuses opposite bridges — `Gather(n)` immediately followed by
//! `Partition(n)` collapses to `Identity` (Fig. 8) — to remove unnecessary
//! communication.

use whale_ir::Primitive;

/// A bridge operation on the tensor flowing between TaskGraphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bridge {
    /// Split the batch dimension into `n` parts.
    Partition(usize),
    /// Concatenate `n` parts into one tensor.
    Gather(usize),
    /// Pass the tensor through unchanged.
    Identity,
}

impl Bridge {
    /// Whether this bridge moves data (Identity does not; degree-1
    /// partitions and gathers are trivial too).
    pub fn is_communication(&self) -> bool {
        match *self {
            Bridge::Partition(n) | Bridge::Gather(n) => n > 1,
            Bridge::Identity => false,
        }
    }
}

/// Input and output bridges a primitive imposes (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgePattern {
    /// Bridge applied to the TaskGraph's input tensor.
    pub input: Bridge,
    /// Bridge applied to the TaskGraph's output tensors.
    pub output: Bridge,
}

/// The bridge pattern of a primitive at parallelism degree `n`.
///
/// * `replica`: input `Partition(n)` (each replica consumes one slice),
///   output `Gather(n)`;
/// * `split`: input `Identity` (used as is), output `Gather(n)`;
/// * `stage`: `Identity` on both sides.
pub fn bridge_pattern(primitive: Primitive, n: usize) -> BridgePattern {
    match primitive {
        Primitive::Replica => BridgePattern {
            input: Bridge::Partition(n),
            output: Bridge::Gather(n),
        },
        Primitive::Split => BridgePattern {
            input: Bridge::Identity,
            output: Bridge::Gather(n),
        },
        Primitive::Stage => BridgePattern {
            input: Bridge::Identity,
            output: Bridge::Identity,
        },
    }
}

/// Fuse a chain of bridges (Fig. 8): drop identities and collapse
/// `Gather(n) → Partition(n)` pairs into nothing (their composition is the
/// identity).
///
/// # Examples
///
/// ```
/// use whale_planner::bridge::{fuse, Bridge};
/// let fused = fuse(&[Bridge::Gather(4), Bridge::Partition(4)]);
/// assert!(fused.is_empty());
/// let kept = fuse(&[Bridge::Gather(3), Bridge::Partition(2)]);
/// assert_eq!(kept.len(), 2);
/// ```
pub fn fuse(chain: &[Bridge]) -> Vec<Bridge> {
    let mut out: Vec<Bridge> = Vec::with_capacity(chain.len());
    for &b in chain {
        if b == Bridge::Identity || matches!(b, Bridge::Partition(1) | Bridge::Gather(1)) {
            continue;
        }
        match (out.last(), b) {
            (Some(&Bridge::Gather(n)), Bridge::Partition(m)) if n == m => {
                out.pop();
            }
            _ => out.push(b),
        }
    }
    out
}

/// The fused bridge chain between two consecutive TaskGraphs: the producer's
/// output bridge followed by the consumer's input bridge.
pub fn connect(
    producer: Primitive,
    producer_degree: usize,
    consumer: Primitive,
    consumer_degree: usize,
) -> Vec<Bridge> {
    let out = bridge_pattern(producer, producer_degree).output;
    let inp = bridge_pattern(consumer, consumer_degree).input;
    fuse(&[out, inp])
}

/// Bytes moved by a fused bridge chain for a boundary tensor of
/// `tensor_bytes` (the full, gathered tensor size).
///
/// `Gather(n)` collects `(n−1)/n` of the tensor to one place; `Partition(n)`
/// scatters `(n−1)/n` of it. The paper's fusion saves exactly these bytes
/// when the pair collapses.
pub fn chain_bytes(chain: &[Bridge], tensor_bytes: u64) -> u64 {
    chain
        .iter()
        .map(|b| match *b {
            Bridge::Partition(n) | Bridge::Gather(n) if n > 1 => {
                (tensor_bytes as f64 * (n as f64 - 1.0) / n as f64) as u64
            }
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_match_fig7() {
        let r = bridge_pattern(Primitive::Replica, 4);
        assert_eq!(r.input, Bridge::Partition(4));
        assert_eq!(r.output, Bridge::Gather(4));
        let s = bridge_pattern(Primitive::Split, 2);
        assert_eq!(s.input, Bridge::Identity);
        assert_eq!(s.output, Bridge::Gather(2));
        let st = bridge_pattern(Primitive::Stage, 1);
        assert_eq!(st.input, Bridge::Identity);
        assert_eq!(st.output, Bridge::Identity);
    }

    #[test]
    fn fig8_fusion_gather_partition_same_degree() {
        // replica(n) → replica(n): Gather(n)·Partition(n) fuses away entirely.
        let chain = connect(Primitive::Replica, 4, Primitive::Replica, 4);
        assert!(chain.is_empty());
    }

    #[test]
    fn fig9_mismatched_degrees_keep_bridges() {
        // DP(3) → DP(2): gather three parts then partition into two.
        let chain = connect(Primitive::Replica, 3, Primitive::Replica, 2);
        assert_eq!(chain, vec![Bridge::Gather(3), Bridge::Partition(2)]);
        assert!(chain.iter().all(|b| b.is_communication()));
    }

    #[test]
    fn split_to_replica_needs_gather_then_partition() {
        let chain = connect(Primitive::Split, 2, Primitive::Replica, 4);
        assert_eq!(chain, vec![Bridge::Gather(2), Bridge::Partition(4)]);
    }

    #[test]
    fn split_to_split_gathers_once() {
        // Consumer split uses the input as-is, so only the producer's gather
        // remains.
        let chain = connect(Primitive::Split, 2, Primitive::Split, 2);
        assert_eq!(chain, vec![Bridge::Gather(2)]);
    }

    #[test]
    fn stage_chain_is_free() {
        let chain = connect(Primitive::Stage, 1, Primitive::Stage, 1);
        assert!(chain.is_empty());
        assert_eq!(chain_bytes(&chain, 1 << 20), 0);
    }

    #[test]
    fn degree_one_bridges_are_trivial() {
        let chain = connect(Primitive::Replica, 1, Primitive::Replica, 1);
        assert!(chain.is_empty());
    }

    #[test]
    fn fusion_saves_bytes() {
        let tensor = 64 << 20;
        let unfused = vec![Bridge::Gather(4), Bridge::Partition(4)];
        let fused = fuse(&unfused);
        assert!(chain_bytes(&unfused, tensor) > 0);
        assert_eq!(chain_bytes(&fused, tensor), 0);
    }

    #[test]
    fn chain_bytes_scale_with_degree() {
        let tensor = 100u64 << 20;
        let g2 = chain_bytes(&[Bridge::Gather(2)], tensor);
        let g4 = chain_bytes(&[Bridge::Gather(4)], tensor);
        assert!(g4 > g2);
        assert!(g4 < tensor);
    }
}
