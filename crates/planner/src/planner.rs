//! The parallel planner (§3.4): Whale IR + cluster → execution plan.
//!
//! Responsibilities, mirroring the paper:
//!
//! 1. **TaskGraph partition** — auto-partition pipeline stages with the
//!    hardware-aware balanced cut (Algorithm 3) when no `stage` was given;
//! 2. **Device mapping** — one virtual device per TaskGraph; the virtual
//!    device size fixes the parallelism degree;
//! 3. **Strategy resolution** — replica → hardware-aware DP partition
//!    (Algorithm 2), split → pattern-matched sharding, nesting → shard
//!    groups replicated inside the virtual device;
//! 4. **Bridges** — insert and fuse Partition/Gather/Identity chains between
//!    TaskGraphs with different parallelism;
//! 5. **Gradient synchronization** — AllReduce groups across replicas
//!    (including plan-level outer data parallelism).

use whale_graph::{CostProfile, TrainingConfig};
use whale_hardware::{Cluster, Collective, VirtualDevice};
use whale_ir::{Primitive, TaskGraph, WhaleIr};

use crate::bridge::{chain_bytes, connect};
use crate::dp_balance::dp_partition;
use crate::error::{PlanError, Result};
use crate::pipe_balance::in_flight_micro_batches;
use crate::plan::{CollectiveTask, DeviceWork, ExecutionPlan, PlannedStage};
use crate::shard::match_split_pattern;

/// Pipeline schedule flavor (affects activation memory and the simulator's
/// task ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Backward-first / 1F1B (DAPPLE, ref \[13\]) — Whale's default (§4).
    BackwardFirst,
    /// GPipe-style flush (ref \[17\]).
    GPipe,
    /// Asynchronous pipeline without a flush (PipeMare, ref \[46\]) — the
    /// paper's §6 future work. Removes the warm-up/drain bubble entirely at
    /// the cost of stale gradients (no convergence guarantee); the trainer
    /// models that as reduced sample efficiency.
    AsyncNoFlush,
}

/// How TaskGraphs map to virtual devices.
#[derive(Debug, Clone)]
pub enum DeviceAssignment {
    /// Slice each plan replica's GPUs evenly across TaskGraphs (one GPU per
    /// stage for auto-partitioned pipelines).
    Auto,
    /// Explicit virtual devices for plan replica 0, one per TaskGraph; other
    /// plan replicas use the same layout shifted by the replica's GPU
    /// offset (the paper's `cluster()` slicing).
    PerTaskGraph(Vec<VirtualDevice>),
}

/// Planner options.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Memory-relevant training options.
    pub training: TrainingConfig,
    /// Compute efficiency `α` in `t = MF/(GF·α)`.
    pub efficiency: f64,
    /// Enable the hardware-aware load balancing of §3.5. Off = the paper's
    /// baselines (uniform batch, FLOP-even stages).
    pub hardware_aware: bool,
    /// Plan-level DP degree when the IR has `outer_replica`. 0 = infer one
    /// replica per node.
    pub outer_dp: usize,
    /// Pipeline schedule flavor.
    pub schedule: ScheduleKind,
    /// TaskGraph → virtual device mapping.
    pub devices: DeviceAssignment,
    /// Communication-optimizer options (gradient fusion buckets + collective
    /// algorithm selection). Default = disabled (legacy sync model).
    pub comm: crate::commopt::CommConfig,
    /// Memoize per-stage cost terms inside the load balancers (PSVF delta
    /// updates instead of full re-profiles). Results are bit-identical with
    /// or without; `false` exists so `fastpath_bench` can measure the
    /// pre-fast-path planner.
    pub memoize: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            training: TrainingConfig::default(),
            efficiency: 0.45,
            hardware_aware: true,
            outer_dp: 0,
            schedule: ScheduleKind::BackwardFirst,
            devices: DeviceAssignment::Auto,
            comm: crate::commopt::CommConfig::default(),
            memoize: true,
        }
    }
}

impl PlannerConfig {
    /// Stable content fingerprint over every option, for plan-cache keys.
    pub fn fingerprint(&self) -> whale_fp::Fingerprint {
        let mut fp = whale_fp::Fingerprinter::new("planner-config");
        fp.push_fingerprint(self.training.fingerprint())
            .push_f64(self.efficiency)
            .push_bool(self.hardware_aware)
            .push_usize(self.outer_dp)
            .push_tag(match self.schedule {
                ScheduleKind::BackwardFirst => 0,
                ScheduleKind::GPipe => 1,
                ScheduleKind::AsyncNoFlush => 2,
            });
        match &self.devices {
            DeviceAssignment::Auto => {
                fp.push_tag(0);
            }
            DeviceAssignment::PerTaskGraph(vds) => {
                fp.push_tag(1).push_len(vds.len());
                for vd in vds {
                    fp.push_len(vd.num_gpus());
                    for &id in vd.gpu_ids() {
                        fp.push_usize(id);
                    }
                }
            }
        }
        fp.push_bool(self.memoize)
            .push_u64(self.comm.fusion_bytes)
            .push_bool(self.comm.auto_algorithm)
            .push_tag(match self.comm.grad_dtype {
                crate::commopt::GradDtype::Fp32 => 0,
                crate::commopt::GradDtype::Bf16 => 1,
                crate::commopt::GradDtype::Fp8 => 2,
            })
            .push_f64(self.comm.compress_ratio);
        fp.finish()
    }
}

/// Plan `ir` onto `cluster` by running the staged compile pipeline
/// (`DegreeInference → Placement → BridgeInsertion → Balance → Schedule`).
///
/// Produces output bit-identical to the retained monolithic
/// [`plan_reference`]; the pipeline exists so passes can be cached and
/// selectively re-run (see [`crate::pipeline`] and [`crate::cache`]).
pub fn plan(ir: &WhaleIr, cluster: &Cluster, config: &PlannerConfig) -> Result<ExecutionPlan> {
    let state = crate::pipeline::compile(ir, cluster, config)?;
    let arc = state
        .plan
        .expect("compile() runs the Schedule pass, which always sets `plan`");
    // The state is freshly compiled and unshared, so this unwrap never
    // clones.
    Ok(std::sync::Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
}

/// The pre-pipeline monolithic planner, retained verbatim as the golden
/// reference for the pass decomposition: `plan()` must produce bit-identical
/// output (asserted by the `pipeline_goldens` integration test across the
/// model zoo × cluster matrix). Not part of the public API surface.
#[doc(hidden)]
pub fn plan_reference(
    ir: &WhaleIr,
    cluster: &Cluster,
    config: &PlannerConfig,
) -> Result<ExecutionPlan> {
    ir.validate()?;
    let num_gpus = cluster.num_gpus();
    if num_gpus == 0 {
        return Err(PlanError::BadConfig("empty cluster".into()));
    }

    // 1. Plan-level data parallelism: split the cluster into `outer_dp`
    // contiguous groups.
    let outer_dp = if ir.outer_replica {
        let r = if config.outer_dp == 0 {
            cluster.num_nodes()
        } else {
            config.outer_dp
        };
        if r == 0 || !num_gpus.is_multiple_of(r) {
            return Err(PlanError::BadConfig(format!(
                "{num_gpus} GPUs not divisible into {r} plan replicas"
            )));
        }
        r
    } else {
        1
    };
    let group_size = num_gpus / outer_dp;
    let groups: Vec<Vec<usize>> = (0..outer_dp)
        .map(|g| (g * group_size..(g + 1) * group_size).collect())
        .collect();

    // 2. Split the global batch across plan replicas.
    let group_weights: Vec<f64> = if config.hardware_aware {
        groups
            .iter()
            .map(|g| g.iter().map(|&id| cluster.gpus()[id].flops()).sum())
            .collect()
    } else {
        vec![1.0; outer_dp]
    };
    let group_batches = crate::partition::proportional_split(ir.global_batch, &group_weights)?;

    let num_micro = ir.pipeline.map(|p| p.num_micro_batches).unwrap_or(1);
    let gpipe = config.schedule == ScheduleKind::GPipe;

    // 3. Resolve TaskGraphs (auto-partition pipelines first). The memoized
    // partition hands back the per-stage profiles it already computed for
    // the final cuts; the stage loop below then skips its own re-profiling
    // pass (bit-identical: same op ranges, same reference batch).
    let (task_graphs, stage_profiles): (Vec<TaskGraph>, Option<Vec<CostProfile>>) =
        if ir.auto_partition && ir.task_graphs.is_empty() {
            auto_stages(
                ir,
                cluster,
                config,
                &groups[0],
                group_batches[0],
                num_micro,
                gpipe,
            )?
        } else {
            (ir.task_graphs.clone(), None)
        };
    if task_graphs.is_empty() {
        return Err(PlanError::BadIr("no TaskGraphs to plan".into()));
    }
    let num_stages = task_graphs.len();

    // 4. Virtual devices per TaskGraph within plan replica 0.
    let vds0 = resolve_devices(config, &groups[0], &task_graphs, ir.pipeline.is_some())?;

    // 5. Plan each TaskGraph once per plan replica and merge the per-replica
    // device work into shared stages.
    //
    // Boundary bytes: `exit_tensors` rescans the whole graph per TaskGraph,
    // an O(stages × ops) term that dominates deep-pipeline planning. The
    // memoized path replaces those scans with one pass over the graph's
    // edges (`stage_boundary_bytes`); per-producer byte sums are u64, so
    // the two computations are exactly equal, not just approximately.
    let boundary_sums: Option<Vec<u64>> = if config.memoize {
        stage_boundary_bytes(&ir.graph, &task_graphs)
    } else {
        None
    };
    let mut stages: Vec<PlannedStage> = Vec::with_capacity(num_stages);
    let mut grad_groups: Vec<(String, Vec<usize>, u64, usize)> = Vec::new();

    for (tg_idx, tg) in task_graphs.iter().enumerate() {
        let profile = match &stage_profiles {
            Some(ps) => ps[tg_idx].clone(),
            None => tg.profile(&ir.graph, ir.global_batch.max(1)),
        };
        let mut devices = Vec::new();
        let mut collectives = Vec::new();

        for (g, group) in groups.iter().enumerate() {
            let offset = group[0];
            let vd_gpus: Vec<usize> = vds0[tg_idx]
                .gpu_ids()
                .iter()
                .map(|&id| id - groups[0][0] + offset)
                .collect();
            for &id in &vd_gpus {
                if !group.contains(&id) {
                    return Err(PlanError::BadDeviceAssignment(format!(
                        "virtual device GPU {id} outside plan replica {g}"
                    )));
                }
            }
            plan_taskgraph(
                PlanTgArgs {
                    ir,
                    cluster,
                    config,
                    tg,
                    profile: &profile,
                    vd_gpus: &vd_gpus,
                    group_batch: group_batches[g],
                    num_micro,
                    stage_index: tg_idx,
                    num_stages,
                    gpipe,
                    outer_dp,
                },
                &mut devices,
                &mut collectives,
            )?;
        }

        // Gradient-sync groups: GPUs at the same (replica/shard) position
        // across plan replicas, or across DP replicas within a group.
        build_grad_groups(
            tg,
            &profile,
            &vds0[tg_idx],
            &groups,
            config,
            &mut grad_groups,
        );

        // Inter-stage boundary bytes per micro batch (at the first group's
        // batch; groups are symmetric by construction).
        let boundary: u64 = match &boundary_sums {
            Some(v) => v[tg_idx],
            None => tg
                .exit_tensors(&ir.graph)
                .iter()
                .map(|(_, bytes)| bytes)
                .sum(),
        };
        let micro_scale = if ir.global_batch > 0 {
            group_batches[0] as f64 / (num_micro as f64 * ir.global_batch as f64)
        } else {
            0.0
        };
        let send_bytes = if tg_idx + 1 < num_stages {
            (boundary as f64 * micro_scale) as u64
        } else {
            0
        };

        let dp_degree = match tg.strategies.as_slice() {
            [] | [Primitive::Replica] => vds0[tg_idx].num_gpus() * outer_dp,
            [Primitive::Split] => outer_dp,
            _ => outer_dp,
        }
        .max(1);
        stages.push(PlannedStage {
            index: tg_idx,
            devices,
            send_bytes_per_micro: send_bytes,
            collectives_per_micro: collectives,
            param_bytes: profile.param_bytes,
            dp_degree,
        });
    }

    // 6. Bridges between consecutive TaskGraphs (only meaningful outside
    // strict stage→stage pipelines, where the pattern is Identity anyway).
    for i in 0..num_stages.saturating_sub(1) {
        let (a, b) = (&task_graphs[i], &task_graphs[i + 1]);
        let deg_a = vds0[i].num_gpus();
        let deg_b = vds0[i + 1].num_gpus();
        // Same virtual device at equal degree: the tensor is already
        // distributed exactly as the consumer expects (the MoE layout —
        // replica output feeds the co-located shard directly; the split
        // pattern's own AllToAll performs any redistribution), so the
        // Gather/Partition pair fuses away entirely (Fig. 8).
        if deg_a == deg_b && vds0[i] == vds0[i + 1] {
            continue;
        }
        let chain = connect(a.innermost(), deg_a, b.innermost(), deg_b);
        if chain.is_empty() {
            continue;
        }
        let boundary: u64 = match &boundary_sums {
            Some(v) => v[i],
            None => a.exit_tensors(&ir.graph).iter().map(|(_, b)| b).sum(),
        };
        let micro_scale =
            group_batches[0] as f64 / (num_micro as f64 * ir.global_batch.max(1) as f64);
        let moved = (chain_bytes(&chain, boundary) as f64 * micro_scale) as u64;
        if moved == 0 {
            continue;
        }
        for (g, group) in groups.iter().enumerate() {
            let offset = group[0] - groups[0][0];
            let mut union: Vec<usize> = vds0[i]
                .gpu_ids()
                .iter()
                .chain(vds0[i + 1].gpu_ids())
                .map(|&id| id + offset)
                .collect();
            union.sort_unstable();
            union.dedup();
            stages[i + 1].collectives_per_micro.push(CollectiveTask {
                kind: Collective::Broadcast,
                group: union,
                bytes: moved,
                label: format!("bridge tg{i}→tg{} (replica {g})", i + 1),
                stage: Some(i + 1),
            });
        }
    }

    let grad_syncs = grad_groups
        .into_iter()
        .filter(|(_, group, _, _)| group.len() > 1)
        .map(|(label, group, bytes, stage)| CollectiveTask {
            kind: Collective::AllReduce,
            group,
            bytes,
            label,
            stage: Some(stage),
        })
        .collect();

    let mut plan = ExecutionPlan {
        name: ir.graph.name().to_string(),
        global_batch: ir.global_batch,
        num_micro_batches: num_micro,
        stages: std::sync::Arc::new(stages),
        grad_syncs: std::sync::Arc::new(grad_syncs),
        grad_sync_schedule: None,
        training: config.training,
        efficiency: config.efficiency,
    };
    plan.validate(cluster)?;
    crate::commopt::attach_schedule(&mut plan, &task_graphs, &ir.graph, cluster, &config.comm)?;
    Ok(plan)
}

/// Exit-tensor byte totals for every TaskGraph in a single sweep over the
/// graph's edges, equal to `tg.exit_tensors(graph).iter().map(|(_, b)| b)
/// .sum()` per TaskGraph: a producer counts once when any consumer lives
/// outside its TaskGraph, and the per-TaskGraph u64 sums are
/// order-independent. Returns `None` when TaskGraphs share ops (the
/// per-TaskGraph scan is then not expressible as one labeling) so the
/// caller falls back to the direct computation.
pub(crate) fn stage_boundary_bytes(
    graph: &whale_graph::Graph,
    task_graphs: &[TaskGraph],
) -> Option<Vec<u64>> {
    const UNASSIGNED: u32 = u32::MAX;
    let mut stage_of = vec![UNASSIGNED; graph.len()];
    for (tg_idx, tg) in task_graphs.iter().enumerate() {
        for op in &tg.ops {
            let slot = stage_of.get_mut(op.0)?;
            if *slot != UNASSIGNED {
                return None;
            }
            *slot = tg_idx as u32;
        }
    }
    let mut exits = vec![false; graph.len()];
    for op in graph.ops() {
        let consumer_stage = stage_of[op.id.0];
        for &input in &op.inputs {
            if stage_of[input.0] != consumer_stage {
                exits[input.0] = true;
            }
        }
    }
    let mut sums = vec![0u64; task_graphs.len()];
    for op in graph.ops() {
        if exits[op.id.0] && stage_of[op.id.0] != UNASSIGNED {
            sums[stage_of[op.id.0] as usize] += op.output_bytes();
        }
    }
    Some(sums)
}

/// Auto-partition a pipeline into one stage per GPU of a plan replica
/// (Example 4: "the stage number is set to the number of virtual devices").
pub(crate) fn auto_stages(
    ir: &WhaleIr,
    cluster: &Cluster,
    config: &PlannerConfig,
    group: &[usize],
    group_batch: usize,
    num_micro: usize,
    gpipe: bool,
) -> Result<(Vec<TaskGraph>, Option<Vec<CostProfile>>)> {
    let gpus: Vec<whale_hardware::Gpu> = group
        .iter()
        .map(|&id| Ok(*cluster.gpu(id)?))
        .collect::<Result<_>>()?;
    let micro_batch = (group_batch / num_micro).max(1);
    let (part, profiles) = crate::pipe_balance::pipeline_partition_profiled(
        &ir.graph,
        &config.training,
        &gpus,
        micro_batch,
        num_micro,
        gpipe,
        ir.global_batch.max(1),
        config.hardware_aware,
        config.memoize,
    )?;
    let tgs = (0..part.num_stages())
        .map(|k| TaskGraph::new(k, part.stage_ops(k), vec![Primitive::Stage]))
        .collect();
    Ok((tgs, profiles))
}

/// Resolve per-TaskGraph virtual devices inside plan replica 0.
pub(crate) fn resolve_devices(
    config: &PlannerConfig,
    group: &[usize],
    task_graphs: &[TaskGraph],
    pipelined: bool,
) -> Result<Vec<VirtualDevice>> {
    let num_stages = task_graphs.len();
    match &config.devices {
        DeviceAssignment::PerTaskGraph(vds) => {
            if vds.len() != num_stages {
                return Err(PlanError::BadDeviceAssignment(format!(
                    "{} virtual devices for {} TaskGraphs",
                    vds.len(),
                    num_stages
                )));
            }
            Ok(vds.clone())
        }
        DeviceAssignment::Auto => {
            // Without a pipeline, replica/split TaskGraphs execute
            // sequentially and share the whole virtual device — the MoE
            // layout of Example 8, where attention is replicated on all
            // GPUs and experts are split across the same GPUs. All-`stage`
            // TaskGraphs are vanilla model parallelism instead (Example 2)
            // and need disjoint placements, handled by the slicing below.
            let vanilla_mp = task_graphs
                .iter()
                .all(|tg| tg.innermost() == Primitive::Stage);
            if !pipelined && !vanilla_mp {
                let vd = VirtualDevice::new(group.to_vec())?;
                return Ok(vec![vd; num_stages]);
            }
            if !group.len().is_multiple_of(num_stages) {
                return Err(PlanError::BadDeviceAssignment(format!(
                    "{} GPUs not divisible across {} TaskGraphs",
                    group.len(),
                    num_stages
                )));
            }
            let per = group.len() / num_stages;
            (0..num_stages)
                .map(|i| {
                    VirtualDevice::new(group[i * per..(i + 1) * per].to_vec())
                        .map_err(PlanError::from)
                })
                .collect()
        }
    }
}

pub(crate) struct PlanTgArgs<'a> {
    pub(crate) ir: &'a WhaleIr,
    pub(crate) cluster: &'a Cluster,
    pub(crate) config: &'a PlannerConfig,
    pub(crate) tg: &'a TaskGraph,
    pub(crate) profile: &'a CostProfile,
    pub(crate) vd_gpus: &'a [usize],
    pub(crate) group_batch: usize,
    pub(crate) num_micro: usize,
    pub(crate) stage_index: usize,
    pub(crate) num_stages: usize,
    pub(crate) gpipe: bool,
    /// Plan-level DP degree (number of plan replicas) — combined with the
    /// in-group replica count it gives ZeRO its shard count.
    pub(crate) outer_dp: usize,
}

/// Plan one TaskGraph on one plan replica's virtual device.
pub(crate) fn plan_taskgraph(
    a: PlanTgArgs<'_>,
    devices: &mut Vec<DeviceWork>,
    collectives: &mut Vec<CollectiveTask>,
) -> Result<()> {
    let in_flight = in_flight_micro_batches(a.stage_index, a.num_stages, a.num_micro, a.gpipe);
    let act_mult = in_flight as f64 / a.num_micro as f64;
    let k = a.vd_gpus.len();
    let fw_per_sample = a.profile.forward_flops_per_sample;

    match a.tg.strategies.as_slice() {
        // Pure data parallelism (possibly via default scope).
        [] | [Primitive::Replica] => {
            let gpus: Vec<whale_hardware::Gpu> = a
                .vd_gpus
                .iter()
                .map(|&id| Ok(*a.cluster.gpu(id)?))
                .collect::<Result<_>>()?;
            // ZeRO shards across every replica of this TaskGraph: in-group
            // replicas times plan-level copies.
            let mut tcfg = a.config.training;
            tcfg.dp_shards = (k * a.outer_dp).max(1);
            let dp = dp_partition(
                a.profile,
                &tcfg,
                &gpus,
                a.group_batch,
                act_mult,
                a.config.hardware_aware,
            )?;
            for (i, &gpu) in a.vd_gpus.iter().enumerate() {
                let bs = dp.batch_sizes[i];
                devices.push(DeviceWork {
                    gpu,
                    fw_flops_per_micro: fw_per_sample * bs as f64 / a.num_micro as f64,
                    mem_traffic_per_micro: a.profile.memory_traffic_bytes_per_sample * bs as f64
                        / a.num_micro as f64,
                    mem_bytes: tcfg.memory_bytes(a.profile, bs, act_mult),
                    samples_per_step: bs,
                });
            }
        }
        // Tensor model parallelism.
        [Primitive::Split] => {
            shard_onto(&a, a.vd_gpus, a.group_batch, act_mult, devices, collectives)?;
        }
        // Manual grouping: the TaskGraph runs whole on one GPU per replica.
        [Primitive::Stage] => {
            if k != 1 {
                return Err(PlanError::BadDeviceAssignment(format!(
                    "stage TaskGraph {} needs a 1-GPU virtual device, got {k}",
                    a.tg.index
                )));
            }
            let mut tcfg = a.config.training;
            tcfg.dp_shards = a.outer_dp.max(1);
            devices.push(DeviceWork {
                gpu: a.vd_gpus[0],
                fw_flops_per_micro: fw_per_sample * a.group_batch as f64 / a.num_micro as f64,
                mem_traffic_per_micro: a.profile.memory_traffic_bytes_per_sample
                    * a.group_batch as f64
                    / a.num_micro as f64,
                mem_bytes: tcfg.memory_bytes(a.profile, a.group_batch, act_mult),
                samples_per_step: a.group_batch,
            });
        }
        // Fig. 6 TG4: split nested inside replica — shard groups replicated.
        [Primitive::Split, Primitive::Replica] => {
            let (s, r) = nested_degrees(k);
            let sub_batches = crate::partition::proportional_split(a.group_batch, &vec![1.0; r])?;
            for (rep, chunk) in a.vd_gpus.chunks(s).enumerate() {
                shard_onto(&a, chunk, sub_batches[rep], act_mult, devices, collectives)?;
            }
        }
        // Replica nested inside split: replica groups each own a shard.
        [Primitive::Replica, Primitive::Split] => {
            let (s, r) = nested_degrees(k);
            for shard_gpus in a.vd_gpus.chunks(r) {
                let gpus: Vec<whale_hardware::Gpu> = shard_gpus
                    .iter()
                    .map(|&id| Ok(*a.cluster.gpu(id)?))
                    .collect::<Result<_>>()?;
                let dp = dp_partition(
                    a.profile,
                    &a.config.training,
                    &gpus,
                    a.group_batch,
                    act_mult / s as f64,
                    a.config.hardware_aware,
                )?;
                for (i, &gpu) in shard_gpus.iter().enumerate() {
                    let bs = dp.batch_sizes[i];
                    devices.push(DeviceWork {
                        gpu,
                        fw_flops_per_micro: fw_per_sample * bs as f64
                            / (a.num_micro as f64 * s as f64),
                        mem_traffic_per_micro: a.profile.memory_traffic_bytes_per_sample
                            * bs as f64
                            / (a.num_micro as f64 * s as f64),
                        mem_bytes: a.config.training.memory_bytes(
                            a.profile,
                            bs,
                            act_mult / s as f64,
                        ),
                        samples_per_step: bs,
                    });
                }
            }
        }
        other => {
            return Err(PlanError::BadIr(format!(
                "unsupported strategy nesting {other:?} on TaskGraph {}",
                a.tg.index
            )));
        }
    }
    Ok(())
}

/// Shard one TaskGraph over `shard_gpus` processing `batch` samples.
pub(crate) fn shard_onto(
    a: &PlanTgArgs<'_>,
    shard_gpus: &[usize],
    batch: usize,
    act_mult: f64,
    devices: &mut Vec<DeviceWork>,
    collectives: &mut Vec<CollectiveTask>,
) -> Result<()> {
    let k = shard_gpus.len();
    let split = match_split_pattern(&a.ir.graph, &a.tg.ops, k)?;
    let fw_per_sample = a.profile.forward_flops_per_sample;
    // Shard-local profile: parameters and activations divided across shards.
    let shard_profile = CostProfile {
        param_count: (a.profile.param_count as f64 * split.param_fraction) as u64,
        param_bytes: (a.profile.param_bytes as f64 * split.param_fraction) as u64,
        forward_flops_per_sample: fw_per_sample * split.flops_fraction,
        activation_bytes_per_sample: a.profile.activation_bytes_per_sample * split.flops_fraction,
        checkpoint_bytes_per_sample: a.profile.checkpoint_bytes_per_sample * split.flops_fraction,
        memory_traffic_bytes_per_sample: a.profile.memory_traffic_bytes_per_sample
            * split.flops_fraction,
        ref_batch: a.profile.ref_batch,
    };
    for &gpu in shard_gpus {
        devices.push(DeviceWork {
            gpu,
            fw_flops_per_micro: fw_per_sample * split.flops_fraction * batch as f64
                / a.num_micro as f64,
            mem_traffic_per_micro: shard_profile.memory_traffic_bytes_per_sample * batch as f64
                / a.num_micro as f64,
            mem_bytes: a
                .config
                .training
                .memory_bytes(&shard_profile, batch, act_mult),
            samples_per_step: batch,
        });
    }
    let micro_scale = batch as f64 / (a.num_micro as f64 * a.ir.global_batch.max(1) as f64);
    for (kind, bytes) in &split.collectives {
        let scaled = (*bytes as f64 * micro_scale) as u64;
        if scaled == 0 || k < 2 {
            continue;
        }
        collectives.push(CollectiveTask {
            kind: *kind,
            group: shard_gpus.to_vec(),
            bytes: scaled,
            label: format!("{:?} split tg{}", split.pattern, a.tg.index),
            stage: Some(a.stage_index),
        });
    }
    Ok(())
}

/// Pick nesting degrees `(split, replica)` with `split·replica = k`,
/// preferring the most balanced divisor pair.
pub(crate) fn nested_degrees(k: usize) -> (usize, usize) {
    let mut best = (k, 1);
    let mut best_gap = k;
    for s in 1..=k {
        if k.is_multiple_of(s) {
            let r = k / s;
            let gap = s.abs_diff(r);
            if gap < best_gap || (gap == best_gap && s > best.0) {
                best = (s, r);
                best_gap = gap;
            }
        }
    }
    best
}

/// Assemble gradient-sync groups for one TaskGraph.
pub(crate) fn build_grad_groups(
    tg: &TaskGraph,
    profile: &CostProfile,
    vd0: &VirtualDevice,
    groups: &[Vec<usize>],
    config: &PlannerConfig,
    out: &mut Vec<(String, Vec<usize>, u64, usize)>,
) {
    let grad_bytes_full = if config.training.amp {
        profile.param_count * 2
    } else {
        profile.param_bytes
    };
    let k = vd0.num_gpus();
    let positions: Vec<Vec<usize>> = vd0
        .gpu_ids()
        .iter()
        .map(|&id0| {
            groups
                .iter()
                .map(|g| id0 - groups[0][0] + g[0])
                .collect::<Vec<usize>>()
        })
        .collect();
    match tg.strategies.as_slice() {
        // Replicas hold full copies: one big group over every replica of
        // every plan copy.
        [] | [Primitive::Replica] => {
            let mut group: Vec<usize> = positions.into_iter().flatten().collect();
            group.sort_unstable();
            out.push((
                format!("dp sync tg{}", tg.index),
                group,
                grad_bytes_full,
                tg.index,
            ));
        }
        // Shards are unique; only plan-level copies need syncing.
        [Primitive::Split] => {
            let per_shard = grad_bytes_full / k.max(1) as u64;
            for (i, pos) in positions.into_iter().enumerate() {
                out.push((
                    format!("split sync tg{} shard{i}", tg.index),
                    pos,
                    per_shard,
                    tg.index,
                ));
            }
        }
        [Primitive::Stage] => {
            let pos = positions.into_iter().flatten().collect();
            out.push((
                format!("stage sync tg{}", tg.index),
                pos,
                grad_bytes_full,
                tg.index,
            ));
        }
        [Primitive::Split, Primitive::Replica] => {
            let (s, _r) = nested_degrees(k);
            // Shard j is replicated in every chunk and every plan copy.
            for j in 0..s {
                let mut group = Vec::new();
                for (idx, pos) in positions.iter().enumerate() {
                    if idx % s == j {
                        group.extend_from_slice(pos);
                    }
                }
                group.sort_unstable();
                out.push((
                    format!("nested sync tg{} shard{j}", tg.index),
                    group,
                    grad_bytes_full / s as u64,
                    tg.index,
                ));
            }
        }
        [Primitive::Replica, Primitive::Split] => {
            let (s, r) = nested_degrees(k);
            for shard in 0..s {
                let mut group = Vec::new();
                for (idx, pos) in positions.iter().enumerate() {
                    if idx / r == shard {
                        group.extend_from_slice(pos);
                    }
                }
                group.sort_unstable();
                out.push((
                    format!("nested sync tg{} shard{shard}", tg.index),
                    group,
                    grad_bytes_full / s as u64,
                    tg.index,
                ));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_ir::Annotator;

    #[test]
    fn nested_degree_selection() {
        assert_eq!(nested_degrees(4), (2, 2));
        assert_eq!(nested_degrees(8), (4, 2));
        assert_eq!(nested_degrees(1), (1, 1));
        assert_eq!(nested_degrees(6), (3, 2));
        assert_eq!(nested_degrees(7), (7, 1));
    }

    #[test]
    fn pure_dp_plan_on_hetero_cluster() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("8xV100+8xP100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        assert_eq!(p.stages.len(), 1);
        assert_eq!(p.stages[0].devices.len(), 16);
        let total: usize = p.stages[0].devices.iter().map(|d| d.samples_per_step).sum();
        assert_eq!(total, 64);
        // V100 replicas get more samples.
        assert!(p.stages[0].devices[0].samples_per_step > p.stages[0].devices[8].samples_per_step);
        // One big gradient-sync group over 16 GPUs.
        assert_eq!(p.grad_syncs.len(), 1);
        assert_eq!(p.grad_syncs[0].group.len(), 16);
    }

    #[test]
    fn baseline_dp_is_uniform() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("8xV100+8xP100").unwrap();
        let cfg = PlannerConfig {
            hardware_aware: false,
            ..PlannerConfig::default()
        };
        let p = plan(&ir, &cluster, &cfg).unwrap();
        assert!(p.stages[0].devices.iter().all(|d| d.samples_per_step == 4));
    }

    #[test]
    fn auto_pipeline_plan() {
        let g = models::bert_base(8, 64).unwrap();
        let ir = Annotator::new(g, 8)
            .auto_pipeline(4)
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("4xV100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        assert_eq!(p.stages.len(), 4);
        assert_eq!(p.num_micro_batches, 4);
        // Stage i sits alone on GPU i.
        for (i, s) in p.stages.iter().enumerate() {
            assert_eq!(s.gpu_ids(), vec![i]);
        }
        // Non-final stages send activations.
        assert!(p.stages[0].send_bytes_per_micro > 0);
        assert_eq!(p.stages[3].send_bytes_per_micro, 0);
    }

    #[test]
    fn outer_dp_replicates_pipeline() {
        let g = models::bert_base(16, 64).unwrap();
        let ir = Annotator::new(g, 16)
            .outer_replica()
            .auto_pipeline(4)
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("2x(4xV100)").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        assert_eq!(p.stages.len(), 4);
        // Each stage runs on one GPU per plan replica.
        for s in p.stages.iter() {
            assert_eq!(s.devices.len(), 2);
        }
        // Per-stage gradient sync across the two plan replicas.
        assert_eq!(p.grad_syncs.len(), 4);
        assert!(p.grad_syncs.iter().all(|c| c.group.len() == 2));
    }

    #[test]
    fn moe_hybrid_plan() {
        use whale_ir::Primitive;
        let g = models::m6_moe(models::MoeConfig::tiny(), 8).unwrap();
        let ir = Annotator::new(g, 8)
            .annotate_named("moe_ffn", vec![Primitive::Split])
            .unwrap()
            .set_default(Primitive::Replica)
            .finish()
            .unwrap();
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let cfg = PlannerConfig {
            devices: DeviceAssignment::PerTaskGraph(
                (0..ir.num_task_graphs())
                    .map(|_| VirtualDevice::new((0..4).collect()).unwrap())
                    .collect(),
            ),
            ..PlannerConfig::default()
        };
        let p = plan(&ir, &cluster, &cfg).unwrap();
        // Split TaskGraphs launch AllToAll per micro batch.
        let has_a2a = p.stages.iter().any(|s| {
            s.collectives_per_micro
                .iter()
                .any(|c| c.kind == Collective::AllToAll)
        });
        assert!(has_a2a, "MoE plan must dispatch tokens with AllToAll");
        // Replica TGs sync over all 4 GPUs; split shards do not sync (single
        // plan replica).
        assert!(p.grad_syncs.iter().any(|c| c.group.len() == 4));
    }

    #[test]
    fn stage_taskgraph_requires_single_gpu_vd() {
        let g = models::bert_base(8, 64).unwrap();
        let n = g.len();
        let ir = Annotator::new(g, 8)
            .pipeline(4)
            .unwrap()
            .annotate_range(0, n / 2, vec![Primitive::Stage])
            .unwrap()
            .annotate_range(n / 2, n, vec![Primitive::Stage])
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("4xV100").unwrap();
        // Auto assignment gives each stage 2 GPUs → must fail loudly.
        let err = plan(&ir, &cluster, &PlannerConfig::default()).unwrap_err();
        assert!(matches!(err, PlanError::BadDeviceAssignment(_)));
    }

    #[test]
    fn plan_memory_accounting_reports_usage() {
        let g = models::bert_large(32, 128).unwrap();
        let ir = Annotator::new(g, 32)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("8xV100+8xP100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let mem = p.memory_per_gpu();
        assert_eq!(mem.len(), 16);
        assert!(mem.values().all(|&m| m > 1 << 30), "params + overhead");
    }
}
