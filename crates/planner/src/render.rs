//! Human-readable rendering of execution plans.
//!
//! Used by `whale-cli` and handy in tests/examples: a compact, stable text
//! summary of what the planner decided — stages, devices, batch shares,
//! memory, collectives, and gradient-sync groups.

use crate::commopt::SyncMode;
use crate::plan::ExecutionPlan;
use std::fmt::Write as _;
use whale_hardware::Cluster;

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Render `plan` as a multi-line summary. `cluster` resolves GPU models;
/// rendering never fails — unknown devices print as `gpu?`.
pub fn render_plan(plan: &ExecutionPlan, cluster: &Cluster) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan '{}': batch {}, {} micro batch(es), {} stage(s), {} GPU(s)",
        plan.name,
        plan.global_batch,
        plan.num_micro_batches,
        plan.stages.len(),
        plan.all_gpus().len()
    );
    for stage in plan.stages.iter() {
        let mem_max = stage.devices.iter().map(|d| d.mem_bytes).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "  stage {:>2}: {:>3} device(s), params {:>8.1} MB, mem ≤ {:>5.1} GiB, dp×{}",
            stage.index,
            stage.devices.len(),
            stage.param_bytes as f64 / 1e6,
            gib(mem_max),
            stage.dp_degree,
        );
        for d in &stage.devices {
            let model = cluster
                .gpu(d.gpu)
                .map(|g| g.model.to_string())
                .unwrap_or_else(|_| "gpu?".into());
            let _ = writeln!(
                out,
                "      gpu{:<3} {:<10} batch {:>4}  {:>7.2} GFLOP/micro  {:>5.1} GiB",
                d.gpu,
                model,
                d.samples_per_step,
                d.fw_flops_per_micro / 1e9,
                gib(d.mem_bytes),
            );
        }
        for c in &stage.collectives_per_micro {
            let _ = writeln!(
                out,
                "      comm {:?} over {} rank(s), {:.1} MB — {}",
                c.kind,
                c.group.len(),
                c.bytes as f64 / 1e6,
                c.label
            );
        }
    }
    let _ = writeln!(
        out,
        "  gradient sync: {} group(s), {:.1} MB per step",
        plan.grad_syncs.len(),
        plan.grad_sync_bytes() as f64 / 1e6
    );
    for c in plan.grad_syncs.iter() {
        let _ = writeln!(
            out,
            "      {:?} over {} rank(s), {:.1} MB — {}",
            c.kind,
            c.group.len(),
            c.bytes as f64 / 1e6,
            c.label
        );
    }
    if let Some(sched) = &plan.grad_sync_schedule {
        let scaled = sched.wire_scaled();
        let wire_note = if scaled {
            format!(
                ", wire {} ×{:.2} → {:.1} MB",
                sched.grad_dtype.name(),
                sched.compress_ratio,
                sched.total_wire_bytes() as f64 / 1e6
            )
        } else {
            String::new()
        };
        match sched.mode {
            SyncMode::Legacy => {
                let _ = writeln!(
                    out,
                    "  grad-sync schedule: legacy (fusion off, one bucket per group){wire_note}"
                );
            }
            SyncMode::Bucketed => {
                let _ = writeln!(
                    out,
                    "  grad-sync schedule: bucketed, fusion cap {:.1} MB, {} bucket(s){wire_note}",
                    sched.fusion_bytes as f64 / 1e6,
                    sched.buckets.len()
                );
                for (i, c) in plan.grad_syncs.iter().enumerate() {
                    let buckets: Vec<&crate::commopt::GradBucket> = sched.buckets_of(i).collect();
                    if buckets.is_empty() {
                        continue;
                    }
                    // Compact per-group algorithm census: "ring×11 tree×2".
                    let mut algos: Vec<(String, usize)> = Vec::new();
                    for b in &buckets {
                        let name = b
                            .algo
                            .map(|a| a.name().to_string())
                            .unwrap_or_else(|| "default".into());
                        match algos.iter_mut().find(|(n, _)| *n == name) {
                            Some((_, count)) => *count += 1,
                            None => algos.push((name, 1)),
                        }
                    }
                    let census = algos
                        .iter()
                        .map(|(n, c)| format!("{n}×{c}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    let group_wire = if scaled {
                        let wire: u64 = buckets.iter().map(|b| b.wire_bytes).sum();
                        format!(" → {:.1} MB wire", wire as f64 / 1e6)
                    } else {
                        String::new()
                    };
                    let _ = writeln!(
                        out,
                        "      {} bucket(s), {:.1} MB{group_wire}, algo {census} — {}",
                        buckets.len(),
                        c.bytes as f64 / 1e6,
                        c.label
                    );
                    // Per-bucket wire detail: only when precision actually
                    // scales the wire — this is how dtype-induced algorithm
                    // flips are inspected from the CLI.
                    if scaled {
                        for (j, b) in buckets.iter().enumerate() {
                            let _ = writeln!(
                                out,
                                "        b{j} layers {}-{}: {:.2} MB → {:.2} MB {} on wire, {}",
                                b.layers.1,
                                b.layers.0,
                                b.bytes as f64 / 1e6,
                                b.wire_bytes as f64 / 1e6,
                                sched.grad_dtype.name(),
                                b.algo.map(|a| a.name()).unwrap_or("default"),
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// One-line digest: `"<stages>s/<gpus>g/<micro>m <batch>b"`.
pub fn digest(plan: &ExecutionPlan) -> String {
    format!(
        "{}s/{}g/{}m {}b",
        plan.stages.len(),
        plan.all_gpus().len(),
        plan.num_micro_batches,
        plan.global_batch
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan, PlannerConfig};
    use whale_graph::models;
    use whale_ir::Annotator;

    #[test]
    fn render_includes_every_section() {
        let g = models::resnet50(64).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("2xV100,2xP100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let r = render_plan(&p, &cluster);
        assert!(r.contains("plan 'resnet50'"));
        assert!(r.contains("stage  0"));
        assert!(r.contains("V100-32GB"));
        assert!(r.contains("P100-16GB"));
        assert!(r.contains("gradient sync: 1 group(s)"));
        assert!(r.contains("grad-sync schedule: legacy"));
        assert_eq!(digest(&p), "1s/4g/1m 64b");
    }

    #[test]
    fn render_shows_bucketed_schedule_with_algorithms() {
        let g = models::bert_large(64, 128).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("2x(8xV100)").unwrap();
        let cfg = PlannerConfig {
            comm: crate::commopt::CommConfig::fused(),
            ..PlannerConfig::default()
        };
        let p = plan(&ir, &cluster, &cfg).unwrap();
        let r = render_plan(&p, &cluster);
        assert!(r.contains("grad-sync schedule: bucketed, fusion cap 26.2 MB"));
        assert!(r.contains("bucket(s)"));
        // Some algorithm census appears (ring/tree/hierarchical).
        assert!(
            r.contains("ring×") || r.contains("tree×") || r.contains("hierarchical×"),
            "algorithm census missing:\n{r}"
        );
    }

    #[test]
    fn render_shows_wire_bytes_and_per_bucket_detail_when_scaled() {
        let g = models::bert_large(64, 128).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("2x(8xV100)").unwrap();
        let cfg = PlannerConfig {
            comm: crate::commopt::CommConfig::fused().bf16(),
            ..PlannerConfig::default()
        };
        let p = plan(&ir, &cluster, &cfg).unwrap();
        let r = render_plan(&p, &cluster);
        assert!(r.contains("wire bf16 ×1.00"), "wire note missing:\n{r}");
        assert!(r.contains("MB wire"), "group wire total missing:\n{r}");
        assert!(r.contains("b0 layers"), "per-bucket detail missing:\n{r}");
        assert!(r.contains("bf16 on wire"), "per-bucket dtype missing:\n{r}");
        // fp32 renders without the wire annotations (output unchanged).
        let plain_cfg = PlannerConfig {
            comm: crate::commopt::CommConfig::fused(),
            ..PlannerConfig::default()
        };
        let plain = plan(&ir, &cluster, &plain_cfg).unwrap();
        let pr = render_plan(&plain, &cluster);
        assert!(!pr.contains("on wire"), "fp32 must not show wire detail");
    }

    #[test]
    fn render_survives_foreign_cluster() {
        // Rendering against a smaller cluster (unknown GPUs) must not panic.
        let g = models::resnet50(16).unwrap();
        let ir = Annotator::new(g, 16)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("4xV100").unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let tiny = Cluster::parse("1xV100").unwrap();
        let r = render_plan(&p, &tiny);
        assert!(r.contains("gpu?"));
    }
}
