//! Error type for planning.

use std::fmt;

/// Errors raised while producing an execution plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// No feasible assignment satisfies the memory constraints, even after
    /// peak shaving and valley filling.
    Infeasible(String),
    /// Device assignment did not match the TaskGraph structure.
    BadDeviceAssignment(String),
    /// The IR was structurally invalid for the requested plan.
    BadIr(String),
    /// Hardware-model error.
    Hardware(String),
    /// A parameter was out of range (degrees, batch sizes, ...).
    BadConfig(String),
    /// The compile service failed internally — e.g. a single-flight leader
    /// panicked mid-compile and its waiters were handed this instead of
    /// hanging on a flight nobody will resolve.
    Internal(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Infeasible(s) => write!(f, "no feasible plan: {s}"),
            PlanError::BadDeviceAssignment(s) => write!(f, "bad device assignment: {s}"),
            PlanError::BadIr(s) => write!(f, "invalid IR: {s}"),
            PlanError::Hardware(s) => write!(f, "hardware error: {s}"),
            PlanError::BadConfig(s) => write!(f, "bad planner config: {s}"),
            PlanError::Internal(s) => write!(f, "internal planner failure: {s}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<whale_hardware::HardwareError> for PlanError {
    fn from(e: whale_hardware::HardwareError) -> Self {
        PlanError::Hardware(e.to_string())
    }
}

impl From<whale_ir::IrError> for PlanError {
    fn from(e: whale_ir::IrError) -> Self {
        PlanError::BadIr(e.to_string())
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, PlanError>;
