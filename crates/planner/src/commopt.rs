//! The communication optimizer: bucketed gradient fusion + per-group
//! collective algorithm selection (§4, "Gradient Synchronization").
//!
//! Whale hides gradient AllReduce behind backward compute. Real stacks
//! (Horovod's tensor fusion, ref \[35\]) get that overlap from *size-capped
//! fusion buckets* released in reverse backward order: as soon as the last
//! gradient contributing to a bucket finalizes, the bucket's AllReduce can
//! launch while earlier layers are still back-propagating. The [`CommOpt`]
//! pass reconstructs that schedule at plan time:
//!
//! * each gradient-sync group's payload is split along the model's layer
//!   structure into buckets of at most [`CommConfig::fusion_bytes`] bytes,
//!   ordered in **reverse backward order** (deepest layers first — their
//!   gradients finalize first);
//! * each bucket records a `ready_frac`: the fraction of the stage's
//!   backward work that must drain before the bucket's last gradient exists
//!   (derived from cumulative per-layer FLOPs, since backward time is
//!   proportional to forward FLOPs);
//! * when [`CommConfig::auto_algorithm`] is set, each bucket also records
//!   the cheapest AllReduce algorithm for its `(group, payload, topology)`
//!   via [`CommModel::select_allreduce`] — small buckets ride the
//!   latency-optimal tree, large ones the bandwidth-optimal ring or
//!   hierarchical reduction.
//!
//! The simulator's event-driven grad-sync path consumes the resulting
//! [`GradSyncSchedule`] directly — no `sync_overlap` interpolation constant.
//! With fusion disabled (`fusion_bytes == 0`, the default) the schedule is
//! [`SyncMode::Legacy`]: one bucket per sync group under the legacy
//! algorithm, and the simulator takes the exact pre-existing code path
//! (bit-identical step times, pinned by `tests/comm_equivalence.rs`).

use whale_graph::Graph;
use whale_hardware::{AllReduceAlgo, Cluster, CommModel};
use whale_ir::TaskGraph;

use crate::error::Result;
use crate::pipeline::{CompileState, PassContext, PassId, PlannerPass};
use crate::plan::{CollectiveTask, ExecutionPlan};

/// Default fusion-bucket cap: 25 MB, Horovod's long-standing default
/// (`HOROVOD_FUSION_THRESHOLD`) and the paper's reference stack.
pub const DEFAULT_FUSION_BYTES: u64 = 25 << 20;

/// Communication-optimizer options, part of
/// [`PlannerConfig`](crate::PlannerConfig) (and thus of every plan-cache
/// key).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommConfig {
    /// Fusion-bucket byte cap. `0` (the default) disables bucketing
    /// entirely: one bucket per sync group, legacy algorithm selection, and
    /// the simulator's original scalar-overlap model (bit-identical to the
    /// pre-optimizer behavior).
    pub fusion_bytes: u64,
    /// Pick the cheapest AllReduce algorithm (ring vs. tree vs.
    /// hierarchical) per bucket from the topology-aware cost model instead
    /// of the legacy default.
    pub auto_algorithm: bool,
}

impl CommConfig {
    /// The recommended production setting: 25 MB buckets + automatic
    /// algorithm selection.
    pub fn fused() -> CommConfig {
        CommConfig {
            fusion_bytes: DEFAULT_FUSION_BYTES,
            auto_algorithm: true,
        }
    }

    /// Whether bucketed fusion is on.
    pub fn enabled(&self) -> bool {
        self.fusion_bytes > 0
    }
}

/// Which overlap model a [`GradSyncSchedule`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Fusion disabled: one bucket per sync group, legacy algorithm. The
    /// simulator ignores the schedule and runs its original scalar
    /// `sync_overlap` model (the schedule still renders, for inspection).
    Legacy,
    /// Size-capped buckets in reverse backward order with per-bucket
    /// readiness; the simulator serializes them per link, event-driven.
    Bucketed,
}

/// One gradient fusion bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct GradBucket {
    /// Index into [`ExecutionPlan::grad_syncs`] of the group this bucket
    /// belongs to.
    pub sync_index: usize,
    /// Payload bytes (the buckets of one sync sum exactly to its `bytes`).
    pub bytes: u64,
    /// Fraction of the owning stage's backward work that must complete
    /// before this bucket's last gradient is final, in `[0, 1]`. The last
    /// bucket of every sync has `ready_frac == 1.0`.
    pub ready_frac: f64,
    /// Chosen AllReduce algorithm (`None` = legacy dispatch).
    pub algo: Option<AllReduceAlgo>,
    /// Model layer range `(min, max)` covered by this bucket.
    pub layers: (usize, usize),
}

/// The full grad-sync schedule attached to an [`ExecutionPlan`] by the
/// [`CommOpt`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct GradSyncSchedule {
    /// Overlap model the buckets encode.
    pub mode: SyncMode,
    /// Fusion cap the buckets were built with.
    pub fusion_bytes: u64,
    /// Buckets, grouped by sync and in reverse backward order within each
    /// sync (deepest layers first).
    pub buckets: Vec<GradBucket>,
}

impl GradSyncSchedule {
    /// Buckets of one sync group, in release order.
    pub fn buckets_of(&self, sync_index: usize) -> impl Iterator<Item = &GradBucket> {
        self.buckets
            .iter()
            .filter(move |b| b.sync_index == sync_index)
    }
}

/// Build the grad-sync schedule for `grad_syncs` against the model's layer
/// structure and the cluster topology. Shared by the [`CommOpt`] pipeline
/// pass and the monolithic `plan_reference`, so both emit identical plans.
pub(crate) fn build_grad_sync_schedule(
    grad_syncs: &[CollectiveTask],
    task_graphs: &[TaskGraph],
    graph: &Graph,
    cluster: &Cluster,
    cfg: &CommConfig,
) -> Result<GradSyncSchedule> {
    let mode = if cfg.enabled() {
        SyncMode::Bucketed
    } else {
        SyncMode::Legacy
    };
    let comm = CommModel::new(cluster);
    let mut buckets = Vec::with_capacity(grad_syncs.len());
    for (sync_index, sync) in grad_syncs.iter().enumerate() {
        let start = buckets.len();
        match mode {
            SyncMode::Legacy => buckets.push(GradBucket {
                sync_index,
                bytes: sync.bytes,
                ready_frac: 1.0,
                algo: None,
                layers: (0, 0),
            }),
            SyncMode::Bucketed => {
                bucket_sync(sync_index, sync, task_graphs, graph, cfg, &mut buckets)
            }
        }
        if cfg.auto_algorithm && mode == SyncMode::Bucketed {
            // One topology walk per group; each bucket then costs three
            // multiply-adds to price (the selector is bit-identical to
            // `select_allreduce`).
            let selector = comm.allreduce_selector(&sync.group)?;
            for b in &mut buckets[start..] {
                b.algo = Some(selector.select(b.bytes).0);
            }
        }
    }
    Ok(GradSyncSchedule {
        mode,
        fusion_bytes: cfg.fusion_bytes,
        buckets,
    })
}

/// Split one sync group's payload into size-capped buckets along the owning
/// stage's layer structure, deepest layers first.
///
/// Byte split: each layer owns a share of `sync.bytes` proportional to its
/// parameter count, realized through cumulative u64 rounding so the bucket
/// bytes sum *exactly* to `sync.bytes` (the telescoping marks guarantee it).
fn bucket_sync(
    sync_index: usize,
    sync: &CollectiveTask,
    task_graphs: &[TaskGraph],
    graph: &Graph,
    cfg: &CommConfig,
    out: &mut Vec<GradBucket>,
) {
    // Per-layer parameter counts and forward FLOPs of the owning stage,
    // layer-indexed flat table (one O(ops) pass, no per-op map lookups).
    let tg = sync
        .stage
        .and_then(|s| task_graphs.iter().find(|tg| tg.index == s));
    let mut layers: Vec<(bool, u64, f64)> = Vec::new();
    if let Some(tg) = tg {
        for &id in &tg.ops {
            if let Ok(op) = graph.op(id) {
                let layer = op.layer.unwrap_or(0);
                if layer >= layers.len() {
                    layers.resize(layer + 1, (false, 0, 0.0));
                }
                let e = &mut layers[layer];
                e.0 = true;
                e.1 += op.param_count();
                e.2 += op.forward_flops();
            }
        }
    }
    let present = |ls: &[(bool, u64, f64)]| -> Vec<(usize, u64, f64)> {
        ls.iter()
            .enumerate()
            .filter(|(_, &(seen, _, _))| seen)
            .map(|(l, &(_, p, f))| (l, p, f))
            .collect()
    };
    let layers = present(&layers);
    let total_params: u64 = layers.iter().map(|&(_, p, _)| p).sum();
    // Accumulate FLOPs in the same (descending) order the packing loop uses
    // so the final bucket's cumulative sum hits the total exactly.
    let total_flops: f64 = layers.iter().rev().map(|&(_, _, f)| f).sum();
    if total_params == 0 {
        // No layer structure to split along (stage missing, no parameters):
        // a single bucket released when the whole backward drains.
        out.push(GradBucket {
            sync_index,
            bytes: sync.bytes,
            ready_frac: 1.0,
            algo: None,
            layers: (0, 0),
        });
        return;
    }

    // Cumulative byte mark after `cum` of `total_params` parameters.
    let mark =
        |cum: u64| -> u64 { ((cum as u128 * sync.bytes as u128) / total_params as u128) as u64 };

    let mut cum_params = 0u64;
    let mut cum_flops = 0.0f64;
    let mut bucket_start = 0u64; // param mark where the open bucket begins
    let mut bucket_layers: Option<(usize, usize)> = None;
    // Deepest layers first: their gradients finalize first in backward.
    for &(layer, params, flops) in layers.iter().rev() {
        let would_be = mark(cum_params + params) - mark(bucket_start);
        if bucket_layers.is_some() && would_be > cfg.fusion_bytes {
            let (min, max) = bucket_layers.take().unwrap();
            out.push(GradBucket {
                sync_index,
                bytes: mark(cum_params) - mark(bucket_start),
                ready_frac: if total_flops > 0.0 {
                    cum_flops / total_flops
                } else {
                    1.0
                },
                algo: None,
                layers: (min, max),
            });
            bucket_start = cum_params;
        }
        cum_params += params;
        cum_flops += flops;
        bucket_layers = Some(match bucket_layers {
            Some((min, max)) => (min.min(layer), max.max(layer)),
            None => (layer, layer),
        });
    }
    let (min, max) = bucket_layers.unwrap_or((0, 0));
    out.push(GradBucket {
        sync_index,
        bytes: sync.bytes - mark(bucket_start),
        ready_frac: 1.0,
        algo: None,
        layers: (min, max),
    });
}

/// Attach the grad-sync schedule to a finished plan (the monolithic
/// reference planner's entry point; the pipeline uses [`CommOpt`]).
pub(crate) fn attach_schedule(
    plan: &mut ExecutionPlan,
    task_graphs: &[TaskGraph],
    graph: &Graph,
    cluster: &Cluster,
    cfg: &CommConfig,
) -> Result<()> {
    plan.grad_sync_schedule = Some(build_grad_sync_schedule(
        &plan.grad_syncs,
        task_graphs,
        graph,
        cluster,
        cfg,
    )?);
    Ok(())
}

/// Pass 6: derive the bucketed grad-sync schedule from the scheduled plan
/// and the placement's layer structure, and attach it to the plan.
///
/// Idempotent: it reads `state.plan` + `state.placement` and rewrites only
/// the plan's `grad_sync_schedule` field (in a fresh `Arc`), so a
/// CommOpt-only re-run needs no earlier artifacts recomputed.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommOpt;

impl PlannerPass for CommOpt {
    fn id(&self) -> PassId {
        PassId::CommOpt
    }

    fn run(&self, cx: &PassContext<'_>, state: &mut CompileState) -> Result<()> {
        let mut plan_arc = state
            .plan
            .take()
            .ok_or_else(|| CompileState::missing(PassId::Schedule, self.id()))?;
        let p = match state.placement.as_ref() {
            Some(p) => p,
            None => {
                state.plan = Some(plan_arc);
                return Err(CompileState::missing(PassId::Placement, self.id()));
            }
        };
        let schedule = match build_grad_sync_schedule(
            &plan_arc.grad_syncs,
            &p.task_graphs,
            &cx.ir.graph,
            cx.cluster,
            &cx.config.comm,
        ) {
            Ok(schedule) => schedule,
            Err(e) => {
                // Put the untouched plan back so a failed CommOpt re-run
                // leaves the state exactly as Schedule produced it.
                state.plan = Some(plan_arc);
                return Err(e);
            }
        };
        // `make_mut` rewrites the schedule in place when the Schedule pass's
        // Arc is still uniquely held (the common pipeline path — no clone of
        // the stage tables); shared handles from a cache fall back to the
        // old copy-on-write behavior.
        std::sync::Arc::make_mut(&mut plan_arc).grad_sync_schedule = Some(schedule);
        state.plan = Some(plan_arc);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;
    use whale_ir::Annotator;

    fn dp_plan(cfg: &crate::PlannerConfig) -> (ExecutionPlan, Cluster) {
        let g = models::bert_large(64, 128).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        (crate::plan(&ir, &cluster, cfg).unwrap(), cluster)
    }

    #[test]
    fn disabled_config_yields_legacy_single_buckets() {
        let (p, _) = dp_plan(&crate::PlannerConfig::default());
        let sched = p.grad_sync_schedule.as_ref().unwrap();
        assert_eq!(sched.mode, SyncMode::Legacy);
        assert_eq!(sched.buckets.len(), p.grad_syncs.len());
        for (i, b) in sched.buckets.iter().enumerate() {
            assert_eq!(b.sync_index, i);
            assert_eq!(b.bytes, p.grad_syncs[i].bytes);
            assert_eq!(b.ready_frac, 1.0);
            assert_eq!(b.algo, None);
        }
    }

    #[test]
    fn bucket_bytes_sum_exactly_and_caps_hold() {
        let cfg = crate::PlannerConfig {
            comm: CommConfig::fused(),
            ..crate::PlannerConfig::default()
        };
        let (p, _) = dp_plan(&cfg);
        let sched = p.grad_sync_schedule.as_ref().unwrap();
        assert_eq!(sched.mode, SyncMode::Bucketed);
        for (i, sync) in p.grad_syncs.iter().enumerate() {
            let buckets: Vec<_> = sched.buckets_of(i).collect();
            assert!(buckets.len() > 1, "BERT-Large must split into buckets");
            let total: u64 = buckets.iter().map(|b| b.bytes).sum();
            assert_eq!(total, sync.bytes, "buckets must sum exactly");
            // Every bucket except possibly single-layer outliers respects
            // the cap; all carry a chosen algorithm.
            for b in &buckets {
                assert!(b.algo.is_some());
                assert!(b.ready_frac > 0.0 && b.ready_frac <= 1.0);
            }
            // Reverse backward order: ready fractions nondecreasing, layer
            // ranges descending, final bucket exactly 1.0.
            for w in buckets.windows(2) {
                assert!(w[0].ready_frac <= w[1].ready_frac);
                assert!(w[0].layers.0 >= w[1].layers.1);
            }
            assert_eq!(buckets.last().unwrap().ready_frac, 1.0);
        }
    }

    #[test]
    fn huge_cap_yields_one_bucket_per_sync() {
        let cfg = crate::PlannerConfig {
            comm: CommConfig {
                fusion_bytes: u64::MAX,
                auto_algorithm: true,
            },
            ..crate::PlannerConfig::default()
        };
        let (p, _) = dp_plan(&cfg);
        let sched = p.grad_sync_schedule.as_ref().unwrap();
        assert_eq!(sched.buckets.len(), p.grad_syncs.len());
        for b in &sched.buckets {
            assert_eq!(b.bytes, p.grad_syncs[b.sync_index].bytes);
            assert_eq!(b.ready_frac, 1.0);
        }
    }
}
