//! The communication optimizer: bucketed gradient fusion + per-group
//! collective algorithm selection (§4, "Gradient Synchronization").
//!
//! Whale hides gradient AllReduce behind backward compute. Real stacks
//! (Horovod's tensor fusion, ref \[35\]) get that overlap from *size-capped
//! fusion buckets* released in reverse backward order: as soon as the last
//! gradient contributing to a bucket finalizes, the bucket's AllReduce can
//! launch while earlier layers are still back-propagating. The [`CommOpt`]
//! pass reconstructs that schedule at plan time:
//!
//! * each gradient-sync group's payload is split along the model's layer
//!   structure into buckets of at most [`CommConfig::fusion_bytes`] bytes,
//!   ordered in **reverse backward order** (deepest layers first — their
//!   gradients finalize first);
//! * each bucket records a `ready_frac`: the fraction of the stage's
//!   backward work that must drain before the bucket's last gradient exists
//!   (derived from cumulative per-layer FLOPs, since backward time is
//!   proportional to forward FLOPs);
//! * when [`CommConfig::auto_algorithm`] is set, each bucket also records
//!   the cheapest AllReduce algorithm for its `(group, payload, topology)`
//!   via [`CommModel::select_allreduce`] — small buckets ride the
//!   latency-optimal tree, large ones the bandwidth-optimal ring or
//!   hierarchical reduction.
//!
//! The simulator's event-driven grad-sync path consumes the resulting
//! [`GradSyncSchedule`] directly — no `sync_overlap` interpolation constant.
//! With fusion disabled (`fusion_bytes == 0`, the default) the schedule is
//! [`SyncMode::Legacy`]: one bucket per sync group under the legacy
//! algorithm, and the simulator takes the exact pre-existing code path
//! (bit-identical step times, pinned by `tests/comm_equivalence.rs`).

use whale_graph::Graph;
use whale_hardware::{AllReduceAlgo, Cluster, CommModel};
use whale_ir::TaskGraph;

use crate::error::Result;
use crate::pipeline::{CompileState, PassContext, PassId, PlannerPass};
use crate::plan::{CollectiveTask, ExecutionPlan};

/// Default fusion-bucket cap: 25 MB, Horovod's long-standing default
/// (`HOROVOD_FUSION_THRESHOLD`) and the paper's reference stack.
pub const DEFAULT_FUSION_BYTES: u64 = 25 << 20;

/// Wire dtype of gradient collectives. Logical payloads are always
/// accounted in fp32 bytes (that is what `CollectiveTask::bytes` holds);
/// the wire dtype scales what actually crosses the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GradDtype {
    /// Full precision: wire bytes == logical bytes (the default; every
    /// pre-existing plan and step time is bit-identical under it).
    #[default]
    Fp32,
    /// Brain float 16: halves every AllReduce payload.
    Bf16,
    /// 8-bit floats (e4m3/e5m2-style): quarters every AllReduce payload.
    Fp8,
}

impl GradDtype {
    /// Bytes per gradient element on the wire.
    pub fn bytes_per_elem(self) -> u64 {
        match self {
            GradDtype::Fp32 => 4,
            GradDtype::Bf16 => 2,
            GradDtype::Fp8 => 1,
        }
    }

    /// Stable display name (`"fp32"`, `"bf16"`, `"fp8"`).
    pub fn name(self) -> &'static str {
        match self {
            GradDtype::Fp32 => "fp32",
            GradDtype::Bf16 => "bf16",
            GradDtype::Fp8 => "fp8",
        }
    }

    /// Parse a display name back into a dtype (the CLI's `--grad-dtype`).
    pub fn parse(s: &str) -> Option<GradDtype> {
        match s {
            "fp32" => Some(GradDtype::Fp32),
            "bf16" => Some(GradDtype::Bf16),
            "fp8" => Some(GradDtype::Fp8),
            _ => None,
        }
    }
}

/// Fractional bits of the fixed-point compression factor. Wire bytes are
/// computed with a single integer division so per-bucket amounts telescope
/// exactly (no float rounding drift across a group's bucket list).
const COMPRESS_FRAC_BITS: u32 = 32;

fn compress_numer(ratio: f64) -> u128 {
    let r = if ratio.is_finite() {
        ratio.clamp(0.0, 1.0)
    } else {
        1.0
    };
    (r * (1u64 << COMPRESS_FRAC_BITS) as f64).round() as u128
}

/// `floor(logical · dtype_bytes · ratio / 4)` in exact integer arithmetic.
/// For fp32 with ratio 1.0 this is the identity.
fn wire_scale(logical: u64, dtype: GradDtype, numer: u128) -> u64 {
    ((logical as u128 * dtype.bytes_per_elem() as u128 * numer) / (4u128 << COMPRESS_FRAC_BITS))
        as u64
}

/// Communication-optimizer options, part of
/// [`PlannerConfig`](crate::PlannerConfig) (and thus of every plan-cache
/// key).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommConfig {
    /// Fusion-bucket byte cap. `0` (the default) disables bucketing
    /// entirely: one bucket per sync group, legacy algorithm selection, and
    /// the simulator's original scalar-overlap model (bit-identical to the
    /// pre-optimizer behavior).
    pub fusion_bytes: u64,
    /// Pick the cheapest AllReduce algorithm (ring vs. tree vs.
    /// hierarchical) per bucket from the topology-aware cost model instead
    /// of the legacy default.
    pub auto_algorithm: bool,
    /// Wire dtype of gradient collectives. Non-fp32 dtypes shrink every
    /// bucket's wire bytes, re-running algorithm selection at the smaller
    /// payload, and charge a per-bucket quantize/dequantize compute term
    /// plus an fp32 master-weight + loss-scaling memory-ledger entry.
    pub grad_dtype: GradDtype,
    /// Optional gradient compression factor in `(0, 1]` applied on top of
    /// the dtype scaling (top-k / sketching-style). `1.0` (the default)
    /// means no compression. Values below 1 also charge an error-feedback
    /// residual in the memory ledger.
    pub compress_ratio: f64,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            fusion_bytes: 0,
            auto_algorithm: false,
            grad_dtype: GradDtype::Fp32,
            compress_ratio: 1.0,
        }
    }
}

impl CommConfig {
    /// The recommended production setting: 25 MB buckets + automatic
    /// algorithm selection.
    pub fn fused() -> CommConfig {
        CommConfig {
            fusion_bytes: DEFAULT_FUSION_BYTES,
            auto_algorithm: true,
            ..CommConfig::default()
        }
    }

    /// Whether bucketed fusion is on.
    pub fn enabled(&self) -> bool {
        self.fusion_bytes > 0
    }

    /// Set the gradient wire dtype (builder style).
    pub fn dtype(mut self, dtype: GradDtype) -> CommConfig {
        self.grad_dtype = dtype;
        self
    }

    /// Communicate gradients in bf16 (halves every wire payload).
    pub fn bf16(self) -> CommConfig {
        self.dtype(GradDtype::Bf16)
    }

    /// Communicate gradients in fp8 (quarters every wire payload).
    pub fn fp8(self) -> CommConfig {
        self.dtype(GradDtype::Fp8)
    }

    /// Apply a compression factor in `(0, 1]` on top of the dtype scaling.
    pub fn compress(mut self, ratio: f64) -> CommConfig {
        self.compress_ratio = ratio;
        self
    }

    /// Whether this config scales wire bytes at all. `false` means every
    /// priced byte count is bit-identical to the logical payload (the
    /// strict fp32/no-compression compatibility contract).
    pub fn wire_scaled(&self) -> bool {
        self.grad_dtype != GradDtype::Fp32
            || compress_numer(self.compress_ratio) != 1u128 << COMPRESS_FRAC_BITS
    }

    /// Wire bytes for a `logical` fp32 payload under this config, in exact
    /// integer arithmetic (identity for fp32 + no compression).
    pub fn wire_bytes(&self, logical: u64) -> u64 {
        wire_scale(
            logical,
            self.grad_dtype,
            compress_numer(self.compress_ratio),
        )
    }
}

/// Which overlap model a [`GradSyncSchedule`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Fusion disabled: one bucket per sync group, legacy algorithm. The
    /// simulator ignores the schedule and runs its original scalar
    /// `sync_overlap` model (the schedule still renders, for inspection).
    Legacy,
    /// Size-capped buckets in reverse backward order with per-bucket
    /// readiness; the simulator serializes them per link, event-driven.
    Bucketed,
}

/// One gradient fusion bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct GradBucket {
    /// Index into [`ExecutionPlan::grad_syncs`] of the group this bucket
    /// belongs to.
    pub sync_index: usize,
    /// Logical payload bytes (the buckets of one sync sum exactly to its
    /// `bytes`).
    pub bytes: u64,
    /// Bytes on the wire after dtype + compression scaling (the buckets of
    /// one sync sum exactly to `CommConfig::wire_bytes(sync.bytes)`; equal
    /// to `bytes` for fp32 without compression). Zero-byte buckets are
    /// legal — compression rounding can empty a small bucket — and cost
    /// nothing to price (the selector skips them).
    pub wire_bytes: u64,
    /// Fraction of the owning stage's backward work that must complete
    /// before this bucket's last gradient is final, in `[0, 1]`. The last
    /// bucket of every sync has `ready_frac == 1.0`.
    pub ready_frac: f64,
    /// Chosen AllReduce algorithm (`None` = legacy dispatch).
    pub algo: Option<AllReduceAlgo>,
    /// Model layer range `(min, max)` covered by this bucket.
    pub layers: (usize, usize),
}

/// The full grad-sync schedule attached to an [`ExecutionPlan`] by the
/// [`CommOpt`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct GradSyncSchedule {
    /// Overlap model the buckets encode.
    pub mode: SyncMode,
    /// Fusion cap the buckets were built with.
    pub fusion_bytes: u64,
    /// Wire dtype the buckets were scaled with.
    pub grad_dtype: GradDtype,
    /// Compression factor the buckets were scaled with.
    pub compress_ratio: f64,
    /// Buckets, grouped by sync and in reverse backward order within each
    /// sync (deepest layers first).
    pub buckets: Vec<GradBucket>,
}

impl GradSyncSchedule {
    /// Buckets of one sync group, in release order.
    pub fn buckets_of(&self, sync_index: usize) -> impl Iterator<Item = &GradBucket> {
        self.buckets
            .iter()
            .filter(move |b| b.sync_index == sync_index)
    }

    /// Whether the schedule scales wire bytes at all (false ⇒ every bucket
    /// has `wire_bytes == bytes` and pricing is bit-identical to fp32).
    pub fn wire_scaled(&self) -> bool {
        self.grad_dtype != GradDtype::Fp32
            || compress_numer(self.compress_ratio) != 1u128 << COMPRESS_FRAC_BITS
    }

    /// Total wire bytes of one sync group (`None` if the schedule carries
    /// no buckets for it).
    pub fn wire_bytes_of(&self, sync_index: usize) -> Option<u64> {
        let mut total = 0u64;
        let mut seen = false;
        for b in self.buckets_of(sync_index) {
            total += b.wire_bytes;
            seen = true;
        }
        seen.then_some(total)
    }

    /// Total wire bytes across every sync group.
    pub fn total_wire_bytes(&self) -> u64 {
        self.buckets.iter().map(|b| b.wire_bytes).sum()
    }
}

/// Build the grad-sync schedule for `grad_syncs` against the model's layer
/// structure and the cluster topology. Shared by the [`CommOpt`] pipeline
/// pass and the monolithic `plan_reference`, so both emit identical plans.
pub(crate) fn build_grad_sync_schedule(
    grad_syncs: &[CollectiveTask],
    task_graphs: &[TaskGraph],
    graph: &Graph,
    cluster: &Cluster,
    cfg: &CommConfig,
) -> Result<GradSyncSchedule> {
    let mode = if cfg.enabled() {
        SyncMode::Bucketed
    } else {
        SyncMode::Legacy
    };
    let comm = CommModel::new(cluster);
    let numer = compress_numer(cfg.compress_ratio);
    let mut buckets = Vec::with_capacity(grad_syncs.len());
    for (sync_index, sync) in grad_syncs.iter().enumerate() {
        let start = buckets.len();
        match mode {
            SyncMode::Legacy => buckets.push(GradBucket {
                sync_index,
                bytes: sync.bytes,
                wire_bytes: 0,
                ready_frac: 1.0,
                algo: None,
                layers: (0, 0),
            }),
            SyncMode::Bucketed => {
                bucket_sync(sync_index, sync, task_graphs, graph, cfg, &mut buckets)
            }
        }
        // Wire bytes telescope over the *logical* cumulative marks, so the
        // group's wire total is exactly `wire_scale(sync.bytes)` regardless
        // of how packing split the payload (bucket boundaries themselves
        // stay dtype-independent — algorithm flips are attributable to
        // payload scaling alone, never to repacking).
        let mut cum = 0u64;
        for b in &mut buckets[start..] {
            let before = wire_scale(cum, cfg.grad_dtype, numer);
            cum += b.bytes;
            b.wire_bytes = wire_scale(cum, cfg.grad_dtype, numer) - before;
        }
        if cfg.auto_algorithm && mode == SyncMode::Bucketed {
            // One topology walk per group; each bucket then costs three
            // multiply-adds to price (the selector is bit-identical to
            // `select_allreduce`). Selection runs on *wire* bytes: smaller
            // messages sit closer to the latency-optimal side of the
            // ring/tree/hierarchical crossover.
            let selector = comm.allreduce_selector(&sync.group)?;
            for b in &mut buckets[start..] {
                b.algo = Some(selector.select(b.wire_bytes).0);
            }
        }
    }
    Ok(GradSyncSchedule {
        mode,
        fusion_bytes: cfg.fusion_bytes,
        grad_dtype: cfg.grad_dtype,
        compress_ratio: cfg.compress_ratio,
        buckets,
    })
}

/// Split one sync group's payload into size-capped buckets along the owning
/// stage's layer structure, deepest layers first.
///
/// Byte split: each layer owns a share of `sync.bytes` proportional to its
/// parameter count, realized through cumulative u64 rounding so the bucket
/// bytes sum *exactly* to `sync.bytes` (the telescoping marks guarantee it).
fn bucket_sync(
    sync_index: usize,
    sync: &CollectiveTask,
    task_graphs: &[TaskGraph],
    graph: &Graph,
    cfg: &CommConfig,
    out: &mut Vec<GradBucket>,
) {
    // Per-layer parameter counts and forward FLOPs of the owning stage,
    // layer-indexed flat table (one O(ops) pass, no per-op map lookups).
    let tg = sync
        .stage
        .and_then(|s| task_graphs.iter().find(|tg| tg.index == s));
    let mut layers: Vec<(bool, u64, f64)> = Vec::new();
    if let Some(tg) = tg {
        for &id in &tg.ops {
            if let Ok(op) = graph.op(id) {
                let layer = op.layer.unwrap_or(0);
                if layer >= layers.len() {
                    layers.resize(layer + 1, (false, 0, 0.0));
                }
                let e = &mut layers[layer];
                e.0 = true;
                e.1 += op.param_count();
                e.2 += op.forward_flops();
            }
        }
    }
    let present = |ls: &[(bool, u64, f64)]| -> Vec<(usize, u64, f64)> {
        ls.iter()
            .enumerate()
            .filter(|(_, &(seen, _, _))| seen)
            .map(|(l, &(_, p, f))| (l, p, f))
            .collect()
    };
    let layers = present(&layers);
    let total_params: u64 = layers.iter().map(|&(_, p, _)| p).sum();
    // Accumulate FLOPs in the same (descending) order the packing loop uses
    // so the final bucket's cumulative sum hits the total exactly.
    let total_flops: f64 = layers.iter().rev().map(|&(_, _, f)| f).sum();
    if total_params == 0 {
        // No layer structure to split along (stage missing, no parameters):
        // a single bucket released when the whole backward drains.
        out.push(GradBucket {
            sync_index,
            bytes: sync.bytes,
            wire_bytes: 0,
            ready_frac: 1.0,
            algo: None,
            layers: (0, 0),
        });
        return;
    }

    // Cumulative byte mark after `cum` of `total_params` parameters.
    let mark =
        |cum: u64| -> u64 { ((cum as u128 * sync.bytes as u128) / total_params as u128) as u64 };

    let mut cum_params = 0u64;
    let mut cum_flops = 0.0f64;
    let mut bucket_start = 0u64; // param mark where the open bucket begins
    let mut bucket_layers: Option<(usize, usize)> = None;
    // Deepest layers first: their gradients finalize first in backward.
    for &(layer, params, flops) in layers.iter().rev() {
        let would_be = mark(cum_params + params) - mark(bucket_start);
        if bucket_layers.is_some() && would_be > cfg.fusion_bytes {
            let (min, max) = bucket_layers.take().unwrap();
            out.push(GradBucket {
                sync_index,
                bytes: mark(cum_params) - mark(bucket_start),
                wire_bytes: 0,
                ready_frac: if total_flops > 0.0 {
                    cum_flops / total_flops
                } else {
                    1.0
                },
                algo: None,
                layers: (min, max),
            });
            bucket_start = cum_params;
        }
        cum_params += params;
        cum_flops += flops;
        bucket_layers = Some(match bucket_layers {
            Some((min, max)) => (min.min(layer), max.max(layer)),
            None => (layer, layer),
        });
    }
    let (min, max) = bucket_layers.unwrap_or((0, 0));
    out.push(GradBucket {
        sync_index,
        bytes: sync.bytes - mark(bucket_start),
        wire_bytes: 0,
        ready_frac: 1.0,
        algo: None,
        layers: (min, max),
    });
}

/// Attach the grad-sync schedule to a finished plan (the monolithic
/// reference planner's entry point; the pipeline uses [`CommOpt`]).
pub(crate) fn attach_schedule(
    plan: &mut ExecutionPlan,
    task_graphs: &[TaskGraph],
    graph: &Graph,
    cluster: &Cluster,
    cfg: &CommConfig,
) -> Result<()> {
    plan.grad_sync_schedule = Some(build_grad_sync_schedule(
        &plan.grad_syncs,
        task_graphs,
        graph,
        cluster,
        cfg,
    )?);
    Ok(())
}

/// Pass 6: derive the bucketed grad-sync schedule from the scheduled plan
/// and the placement's layer structure, and attach it to the plan.
///
/// Idempotent: it reads `state.plan` + `state.placement` and rewrites only
/// the plan's `grad_sync_schedule` field (in a fresh `Arc`), so a
/// CommOpt-only re-run needs no earlier artifacts recomputed.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommOpt;

impl PlannerPass for CommOpt {
    fn id(&self) -> PassId {
        PassId::CommOpt
    }

    fn run(&self, cx: &PassContext<'_>, state: &mut CompileState) -> Result<()> {
        let mut plan_arc = state
            .plan
            .take()
            .ok_or_else(|| CompileState::missing(PassId::Schedule, self.id()))?;
        let p = match state.placement.as_ref() {
            Some(p) => p,
            None => {
                state.plan = Some(plan_arc);
                return Err(CompileState::missing(PassId::Placement, self.id()));
            }
        };
        let schedule = match build_grad_sync_schedule(
            &plan_arc.grad_syncs,
            &p.task_graphs,
            &cx.ir.graph,
            cx.cluster,
            &cx.config.comm,
        ) {
            Ok(schedule) => schedule,
            Err(e) => {
                // Put the untouched plan back so a failed CommOpt re-run
                // leaves the state exactly as Schedule produced it.
                state.plan = Some(plan_arc);
                return Err(e);
            }
        };
        // `make_mut` rewrites the schedule in place when the Schedule pass's
        // Arc is still uniquely held (the common pipeline path — no clone of
        // the stage tables); shared handles from a cache fall back to the
        // old copy-on-write behavior.
        std::sync::Arc::make_mut(&mut plan_arc).grad_sync_schedule = Some(schedule);
        state.plan = Some(plan_arc);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;
    use whale_ir::Annotator;

    fn dp_plan(cfg: &crate::PlannerConfig) -> (ExecutionPlan, Cluster) {
        let g = models::bert_large(64, 128).unwrap();
        let ir = Annotator::new(g, 64)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
        (crate::plan(&ir, &cluster, cfg).unwrap(), cluster)
    }

    #[test]
    fn disabled_config_yields_legacy_single_buckets() {
        let (p, _) = dp_plan(&crate::PlannerConfig::default());
        let sched = p.grad_sync_schedule.as_ref().unwrap();
        assert_eq!(sched.mode, SyncMode::Legacy);
        assert_eq!(sched.buckets.len(), p.grad_syncs.len());
        for (i, b) in sched.buckets.iter().enumerate() {
            assert_eq!(b.sync_index, i);
            assert_eq!(b.bytes, p.grad_syncs[i].bytes);
            assert_eq!(b.ready_frac, 1.0);
            assert_eq!(b.algo, None);
        }
    }

    #[test]
    fn bucket_bytes_sum_exactly_and_caps_hold() {
        let cfg = crate::PlannerConfig {
            comm: CommConfig::fused(),
            ..crate::PlannerConfig::default()
        };
        let (p, _) = dp_plan(&cfg);
        let sched = p.grad_sync_schedule.as_ref().unwrap();
        assert_eq!(sched.mode, SyncMode::Bucketed);
        for (i, sync) in p.grad_syncs.iter().enumerate() {
            let buckets: Vec<_> = sched.buckets_of(i).collect();
            assert!(buckets.len() > 1, "BERT-Large must split into buckets");
            let total: u64 = buckets.iter().map(|b| b.bytes).sum();
            assert_eq!(total, sync.bytes, "buckets must sum exactly");
            // Every bucket except possibly single-layer outliers respects
            // the cap; all carry a chosen algorithm.
            for b in &buckets {
                assert!(b.algo.is_some());
                assert!(b.ready_frac > 0.0 && b.ready_frac <= 1.0);
            }
            // Reverse backward order: ready fractions nondecreasing, layer
            // ranges descending, final bucket exactly 1.0.
            for w in buckets.windows(2) {
                assert!(w[0].ready_frac <= w[1].ready_frac);
                assert!(w[0].layers.0 >= w[1].layers.1);
            }
            assert_eq!(buckets.last().unwrap().ready_frac, 1.0);
        }
    }

    #[test]
    fn fp32_wire_bytes_equal_logical_bytes() {
        let cfg = crate::PlannerConfig {
            comm: CommConfig::fused(),
            ..crate::PlannerConfig::default()
        };
        assert!(!cfg.comm.wire_scaled());
        let (p, _) = dp_plan(&cfg);
        let sched = p.grad_sync_schedule.as_ref().unwrap();
        assert!(!sched.wire_scaled());
        for b in &sched.buckets {
            assert_eq!(b.wire_bytes, b.bytes, "fp32 must be the identity");
        }
    }

    #[test]
    fn scaled_wire_bytes_telescope_exactly() {
        for (dtype, ratio) in [
            (GradDtype::Bf16, 1.0),
            (GradDtype::Fp8, 1.0),
            (GradDtype::Bf16, 0.37),
            (GradDtype::Fp32, 0.125),
        ] {
            let comm = CommConfig::fused().dtype(dtype).compress(ratio);
            assert!(comm.wire_scaled());
            let cfg = crate::PlannerConfig {
                comm,
                ..crate::PlannerConfig::default()
            };
            let (p, _) = dp_plan(&cfg);
            let sched = p.grad_sync_schedule.as_ref().unwrap();
            assert_eq!(sched.grad_dtype, dtype);
            for (i, sync) in p.grad_syncs.iter().enumerate() {
                assert_eq!(
                    sched.wire_bytes_of(i),
                    Some(comm.wire_bytes(sync.bytes)),
                    "{}/{ratio}: group wire bytes must telescope to scale(sync.bytes)",
                    dtype.name()
                );
                for b in sched.buckets_of(i) {
                    assert!(b.wire_bytes <= b.bytes);
                }
            }
        }
    }

    #[test]
    fn dtype_scaling_keeps_bucket_boundaries() {
        // Bucket packing runs on logical bytes, so a dtype change must not
        // repack — algorithm flips are attributable to payload scaling only.
        let base = crate::PlannerConfig {
            comm: CommConfig::fused(),
            ..crate::PlannerConfig::default()
        };
        let fp8 = crate::PlannerConfig {
            comm: CommConfig::fused().fp8(),
            ..crate::PlannerConfig::default()
        };
        let (p32, _) = dp_plan(&base);
        let (p8, _) = dp_plan(&fp8);
        let s32 = p32.grad_sync_schedule.as_ref().unwrap();
        let s8 = p8.grad_sync_schedule.as_ref().unwrap();
        assert_eq!(s32.buckets.len(), s8.buckets.len());
        for (a, b) in s32.buckets.iter().zip(&s8.buckets) {
            assert_eq!(
                (a.sync_index, a.bytes, a.layers),
                (b.sync_index, b.bytes, b.layers)
            );
            assert_eq!(a.ready_frac, b.ready_frac);
        }
    }

    #[test]
    fn wire_scale_is_exact_at_the_extremes() {
        let id = CommConfig::default();
        for bytes in [0u64, 1, 3, 4, 1 << 20, u64::MAX >> 3] {
            assert_eq!(id.wire_bytes(bytes), bytes);
        }
        let bf16 = CommConfig::default().bf16();
        assert_eq!(bf16.wire_bytes(10), 5);
        assert_eq!(bf16.wire_bytes(1), 0, "sub-element payloads round down");
        let heavy = CommConfig::default().fp8().compress(0.25);
        assert_eq!(heavy.wire_bytes(1 << 20), 1 << 16);
    }

    #[test]
    fn huge_cap_yields_one_bucket_per_sync() {
        let cfg = crate::PlannerConfig {
            comm: CommConfig {
                fusion_bytes: u64::MAX,
                auto_algorithm: true,
                ..CommConfig::default()
            },
            ..crate::PlannerConfig::default()
        };
        let (p, _) = dp_plan(&cfg);
        let sched = p.grad_sync_schedule.as_ref().unwrap();
        assert_eq!(sched.buckets.len(), p.grad_syncs.len());
        for b in &sched.buckets {
            assert_eq!(b.bytes, p.grad_syncs[b.sync_index].bytes);
            assert_eq!(b.ready_frac, 1.0);
        }
    }
}
