//! Hardware-aware pipeline partitioning — Algorithm 3 of the paper.
//!
//! The forward ops are cut into contiguous stages whose FLOPs are
//! proportional to the stage GPUs' FLOPS; if a stage overflows its GPU's
//! memory, PSVF repairs the cut with `shift_op` — moving one boundary
//! operation at a time from the peak stage toward the valley stage through
//! the intermediate stages (Fig. 11), which preserves topological order.
//!
//! # Cross-plan partition memo
//!
//! The FLOP-proportional cut and the per-stage [`CostProfile`]s depend only
//! on the graph content, the training config, the stage GPUs' specs, the
//! reference batch, and the hardware-awareness flag — **not** on the leaf's
//! micro-batch size, micro-batch count, or schedule. Those three only enter
//! through the activation-memory overflow check that decides whether PSVF
//! runs. The auto-parallel search plans the *same* model on the *same*
//! stage shape dozens of times while sweeping micro counts and schedules,
//! so this module keeps a process-global, content-fingerprint-keyed memo of
//! `(cuts, profiles)`; a hit replays the O(stages) overflow check from the
//! cached profiles and skips the O(ops) cost scan and profiling pass
//! entirely. Hits are bit-identical to cold computes by construction (the
//! memo stores the exact pre-PSVF state the cold path would reach), and an
//! overflowing hit still runs PSVF, seeded from the cached profiles.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::{PlanError, Result};
use crate::partition::{balanced_cuts, group_costs};
use crate::psvf::{psvf, PsvfReport, Workload};
use whale_fp::{Fingerprint, Fingerprinter};
use whale_graph::{CostProfile, Graph, OpId, TrainingConfig};
use whale_hardware::Gpu;

/// One memoized FLOP-proportional cut: the balanced cut points plus the
/// per-stage profiles at the reference batch, captured *before* any PSVF
/// repair (PSVF depends on the leaf's micro/schedule and is never cached).
type PartitionSeed = Arc<(Vec<usize>, Vec<CostProfile>)>;

/// Bound on the memo; past it the map is flushed wholesale. Entries are a
/// few hundred bytes, and one search touches a handful of keys (one per
/// stage shape), so the cap exists only to keep long-lived processes that
/// plan many distinct models from growing without bound.
const PARTITION_MEMO_CAP: usize = 512;

fn partition_memo() -> &'static Mutex<HashMap<Fingerprint, PartitionSeed>> {
    static MEMO: OnceLock<Mutex<HashMap<Fingerprint, PartitionSeed>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_memo() -> std::sync::MutexGuard<'static, HashMap<Fingerprint, PartitionSeed>> {
    partition_memo()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Content key over exactly the inputs the balanced cut and the reference
/// profiles read: graph ops, training config, each stage GPU's model and
/// throughput scale (covering both its FLOPS weight and memory capacity),
/// the reference batch, and hardware awareness. Deliberately excludes GPU
/// ids and node placement so every plan replica, micro count, and schedule
/// sharing a stage shape shares one entry.
fn partition_key(
    graph: &Graph,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    ref_batch: usize,
    hardware_aware: bool,
) -> Fingerprint {
    let mut fp = Fingerprinter::new("pipe-partition");
    fp.push_fingerprint(graph.fingerprint())
        .push_fingerprint(cfg.fingerprint())
        .push_usize(ref_batch)
        .push_bool(hardware_aware)
        .push_len(gpus.len());
    for g in gpus {
        // The memo is process-local, so the enum discriminant is a stable
        // enough model identity — cheaper than formatting the name on a
        // path the search hits once per planned leaf.
        fp.push_usize(g.model as usize).push_f64(g.throughput_scale);
    }
    fp.finish()
}

/// Outcome of Algorithm 3.
#[derive(Debug, Clone, PartialEq)]
pub struct PipePartition {
    /// Cut points over the op sequence: stage `k` owns ops
    /// `[cuts[k], cuts[k+1])`.
    pub cuts: Vec<usize>,
    /// PSVF trace when the FLOP-proportional cut overflowed memory.
    pub psvf: Option<PsvfReport>,
}

impl PipePartition {
    /// Op ids of stage `k`.
    pub fn stage_ops(&self, k: usize) -> Vec<OpId> {
        (self.cuts[k]..self.cuts[k + 1]).map(OpId).collect()
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.cuts.len() - 1
    }
}

/// In-flight micro-batch count per stage under a backward-first (1F1B)
/// schedule: stage `i` of `s` holds at most `min(s − i, m)` activations
/// (ref \[13\]); under GPipe every stage holds all `m`.
pub fn in_flight_micro_batches(
    stage: usize,
    num_stages: usize,
    num_micro: usize,
    gpipe: bool,
) -> usize {
    if gpipe {
        num_micro
    } else {
        (num_stages - stage).min(num_micro)
    }
}

/// Memoized per-stage cost terms. Every PSVF iteration queries the memory
/// ratio of *all* stages; without the cache each query re-profiles the
/// stage's whole op range, making one PSVF step O(stages × ops). The cache
/// stores the (memory, flops) pair per stage and a `shift` refreshes only
/// the stages whose boundaries moved, so steady-state queries are O(1).
struct StageCostCache {
    mem: Vec<u64>,
    flops: Vec<f64>,
    /// Full per-stage profiles for the current cuts. The planner's stage
    /// loop needs exactly these (`TaskGraph::profile` over the same op
    /// ranges at the same reference batch), so the partition hands them
    /// back and the planner skips its own re-profiling pass.
    profiles: Vec<CostProfile>,
}

/// The `shift_op` workload over stage cut points.
struct PipeWorkload<'a> {
    graph: &'a Graph,
    cuts: Vec<usize>,
    cfg: &'a TrainingConfig,
    gpus: &'a [Gpu],
    micro_batch: usize,
    num_micro: usize,
    gpipe: bool,
    ref_batch: usize,
    /// `None` disables memoization (the planner-baseline path that
    /// `fastpath_bench` measures the speedup against).
    cache: Option<StageCostCache>,
}

impl<'a> PipeWorkload<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        graph: &'a Graph,
        cuts: Vec<usize>,
        cfg: &'a TrainingConfig,
        gpus: &'a [Gpu],
        micro_batch: usize,
        num_micro: usize,
        gpipe: bool,
        ref_batch: usize,
        memoize: bool,
    ) -> PipeWorkload<'a> {
        let mut w = PipeWorkload {
            graph,
            cuts,
            cfg,
            gpus,
            micro_batch,
            num_micro,
            gpipe,
            ref_batch,
            cache: None,
        };
        if memoize {
            let profiles = (0..w.gpus.len()).map(|i| w.stage_profile(i)).collect();
            w.install_cache(profiles);
        }
        w
    }

    /// [`PipeWorkload::new`] with the initial per-stage profiles supplied by
    /// the caller (a cross-plan memo hit) instead of recomputed from the op
    /// ranges. The profiles must correspond to `cuts` at `ref_batch`;
    /// `stage_profile` is deterministic, so the seeded workload is
    /// bit-identical to a freshly profiled one.
    #[allow(clippy::too_many_arguments)]
    fn seeded(
        graph: &'a Graph,
        cuts: Vec<usize>,
        cfg: &'a TrainingConfig,
        gpus: &'a [Gpu],
        micro_batch: usize,
        num_micro: usize,
        gpipe: bool,
        ref_batch: usize,
        profiles: Vec<CostProfile>,
    ) -> PipeWorkload<'a> {
        let mut w = PipeWorkload {
            graph,
            cuts,
            cfg,
            gpus,
            micro_batch,
            num_micro,
            gpipe,
            ref_batch,
            cache: None,
        };
        w.install_cache(profiles);
        w
    }

    /// Build the stage-cost cache from the given per-stage profiles,
    /// deriving the (memory, flops) pairs through the same `stage_cost_of`
    /// the direct queries use.
    fn install_cache(&mut self, profiles: Vec<CostProfile>) {
        let n = self.gpus.len();
        let mut mem = vec![0; n];
        let mut flops = vec![0.0; n];
        for (i, p) in profiles.iter().enumerate() {
            let (m, f) = self.stage_cost_of(i, p);
            mem[i] = m;
            flops[i] = f;
        }
        self.cache = Some(StageCostCache {
            mem,
            flops,
            profiles,
        });
    }

    fn stage_profile(&self, i: usize) -> CostProfile {
        let ops: Vec<OpId> = (self.cuts[i]..self.cuts[i + 1]).map(OpId).collect();
        CostProfile::from_ops(self.graph, &ops, self.ref_batch)
    }

    /// (memory, flops) of stage `i` given its profile — the single source of
    /// truth both the direct queries and the cache refresh go through, so
    /// cached and uncached runs are bit-identical.
    fn stage_cost_of(&self, i: usize, p: &CostProfile) -> (u64, f64) {
        let act_mult =
            in_flight_micro_batches(i, self.gpus.len(), self.num_micro, self.gpipe) as f64;
        (
            self.cfg.memory_bytes(p, self.micro_batch, act_mult),
            self.cfg.step_flops(p, self.micro_batch),
        )
    }

    /// Uncached (memory, flops) of stage `i`.
    fn stage_cost(&self, i: usize) -> (u64, f64) {
        let p = self.stage_profile(i);
        self.stage_cost_of(i, &p)
    }

    /// Refresh the cache for stages whose op ranges changed.
    fn refresh(&mut self, lo: usize, hi: usize) {
        if self.cache.is_none() {
            return;
        }
        for i in lo..=hi {
            let p = self.stage_profile(i);
            let (m, f) = self.stage_cost_of(i, &p);
            let cache = self.cache.as_mut().expect("checked above");
            cache.mem[i] = m;
            cache.flops[i] = f;
            cache.profiles[i] = p;
        }
    }
}

impl Workload for PipeWorkload<'_> {
    fn len(&self) -> usize {
        self.gpus.len()
    }
    fn mem_bytes(&self, i: usize) -> u64 {
        match &self.cache {
            Some(c) => c.mem[i],
            None => self.stage_cost(i).0,
        }
    }
    fn mem_capacity(&self, i: usize) -> u64 {
        self.gpus[i].memory_bytes()
    }
    fn flops(&self, i: usize) -> f64 {
        match &self.cache {
            Some(c) => c.flops[i],
            None => self.stage_cost(i).1,
        }
    }
    fn flops_capacity(&self, i: usize) -> f64 {
        self.gpus[i].flops()
    }
    fn shift(&mut self, from: usize, to: usize) -> bool {
        // Fig. 11: a shift from stage `from` to stage `to` ripples one op
        // across each intervening boundary, keeping topological order.
        if from < to {
            // Boundaries from+1 ..= to move left by one.
            for k in from + 1..=to {
                if self.cuts[k] - 1 <= self.cuts[k - 1] {
                    // Some intermediate stage would become empty: revert.
                    for j in (from + 1..k).rev() {
                        self.cuts[j] += 1;
                    }
                    return false;
                }
                self.cuts[k] -= 1;
            }
            self.refresh(from, to);
            true
        } else if from > to {
            for k in (to + 1..=from).rev() {
                if self.cuts[k] + 1 >= self.cuts[k + 1] {
                    for j in k + 1..=from {
                        self.cuts[j] -= 1;
                    }
                    return false;
                }
                self.cuts[k] += 1;
            }
            self.refresh(to, from);
            true
        } else {
            false
        }
    }
}

/// Algorithm 3: hardware-aware pipeline partition of `graph` onto one GPU
/// per stage.
///
/// `micro_batch` is the per-micro-batch sample count; `num_micro` the number
/// of in-flight micro batches (for activation memory); `gpipe` selects the
/// flush schedule's memory model. With `hardware_aware = false` the cut is
/// FLOP-even regardless of GPU type — the Fig. 18 baseline.
#[allow(clippy::too_many_arguments)]
pub fn pipeline_partition(
    graph: &Graph,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    micro_batch: usize,
    num_micro: usize,
    gpipe: bool,
    ref_batch: usize,
    hardware_aware: bool,
) -> Result<PipePartition> {
    pipeline_partition_opts(
        graph,
        cfg,
        gpus,
        micro_batch,
        num_micro,
        gpipe,
        ref_batch,
        hardware_aware,
        true,
    )
}

/// [`pipeline_partition`] with the per-stage cost memoization made explicit.
/// `memoize = false` recomputes every profile query from scratch — the
/// pre-fast-path behavior kept for benchmarking; results are bit-identical
/// either way.
#[allow(clippy::too_many_arguments)]
pub fn pipeline_partition_opts(
    graph: &Graph,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    micro_batch: usize,
    num_micro: usize,
    gpipe: bool,
    ref_batch: usize,
    hardware_aware: bool,
    memoize: bool,
) -> Result<PipePartition> {
    pipeline_partition_profiled(
        graph,
        cfg,
        gpus,
        micro_batch,
        num_micro,
        gpipe,
        ref_batch,
        hardware_aware,
        memoize,
    )
    .map(|(part, _)| part)
}

/// [`pipeline_partition_opts`] that also returns the memoized per-stage
/// [`CostProfile`]s for the final cuts (`None` when `memoize` is off). The
/// profiles equal `CostProfile::from_ops` over each stage's op range at
/// `ref_batch` — exactly what the planner's stage loop would recompute — so
/// callers can skip that second profiling pass.
///
/// With `memoize` on, the balanced cut and reference profiles come from the
/// cross-plan partition memo when a previous call already computed them for
/// the same (graph, config, stage GPUs, reference batch, awareness) key —
/// see the module docs. Results are bit-identical with or without a hit.
#[allow(clippy::too_many_arguments)]
pub fn pipeline_partition_profiled(
    graph: &Graph,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    micro_batch: usize,
    num_micro: usize,
    gpipe: bool,
    ref_batch: usize,
    hardware_aware: bool,
    memoize: bool,
) -> Result<(PipePartition, Option<Vec<CostProfile>>)> {
    if gpus.is_empty() {
        return Err(PlanError::BadConfig(
            "pipeline needs at least one stage GPU".into(),
        ));
    }
    let key = memoize.then(|| partition_key(graph, cfg, gpus, ref_batch, hardware_aware));
    if let Some(key) = key {
        let seed = lock_memo().get(&key).cloned();
        if let Some(seed) = seed {
            let (cuts, profiles) = &*seed;
            // Replay the cold path's overflow check from the cached
            // profiles — the only place the leaf's micro/schedule enters.
            let overflow = hardware_aware
                && gpus.iter().enumerate().any(|(i, g)| {
                    let act = in_flight_micro_batches(i, gpus.len(), num_micro, gpipe) as f64;
                    cfg.memory_bytes(&profiles[i], micro_batch, act) > g.memory_bytes()
                });
            if !overflow {
                return Ok((
                    PipePartition {
                        cuts: cuts.clone(),
                        psvf: None,
                    },
                    Some(profiles.clone()),
                ));
            }
            let mut w = PipeWorkload::seeded(
                graph,
                cuts.clone(),
                cfg,
                gpus,
                micro_batch,
                num_micro,
                gpipe,
                ref_batch,
                profiles.clone(),
            );
            let report = Some(psvf(&mut w)?);
            let profiles = w.cache.map(|c| c.profiles);
            return Ok((
                PipePartition {
                    cuts: w.cuts,
                    psvf: report,
                },
                profiles,
            ));
        }
    }
    let costs: Vec<f64> = graph.ops().iter().map(|op| op.forward_flops()).collect();
    let weights: Vec<f64> = if hardware_aware {
        gpus.iter().map(|g| g.flops()).collect()
    } else {
        vec![1.0; gpus.len()]
    };
    let cuts = balanced_cuts(&costs, &weights)?;
    let mut w = PipeWorkload::new(
        graph,
        cuts,
        cfg,
        gpus,
        micro_batch,
        num_micro,
        gpipe,
        ref_batch,
        memoize,
    );
    if let (Some(key), Some(cache)) = (key, &w.cache) {
        // Snapshot the pre-PSVF state: exactly what a future hit replays.
        let mut memo = lock_memo();
        if memo.len() >= PARTITION_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, Arc::new((w.cuts.clone(), cache.profiles.clone())));
    }
    let report = if hardware_aware {
        let overflow = (0..w.len()).any(|i| w.mem_bytes(i) > w.mem_capacity(i));
        if overflow {
            Some(psvf(&mut w)?)
        } else {
            None
        }
    } else {
        None
    };
    let profiles = w.cache.map(|c| c.profiles);
    Ok((
        PipePartition {
            cuts: w.cuts,
            psvf: report,
        },
        profiles,
    ))
}

/// Per-stage forward FLOPs of a partition (diagnostics).
pub fn stage_flops(graph: &Graph, part: &PipePartition) -> Vec<f64> {
    let costs: Vec<f64> = graph.ops().iter().map(|op| op.forward_flops()).collect();
    group_costs(&costs, &part.cuts)
}

/// Admissible pre-plan lower bound on the simulated step time of the
/// pipeline leaf `(replicas, num_micro, gpipe)` on `cluster`, priced from
/// the **exact partition the planner would produce** — cuts, PSVF repair
/// and all — without paying for placement, bridging, balancing, or
/// scheduling.
///
/// The planner's replica groups are contiguous device ranges and a `Stage`
/// TaskGraph runs whole on one group GPU in order, so replica 0's stage →
/// GPU pairing, batch share, and per-stage profiles are all determined
/// before any plan exists. This reruns the planner's own partition entry
/// point ([`pipeline_partition_profiled`]) with the leaf's exact arguments
/// — a memo hit after the structure's first plan — and then reprices each
/// stage the way the estimator's post-plan bound does (per-micro FLOPs at
/// the device's effective rate plus memory traffic at device bandwidth,
/// backward = κ× forward), keeping only the data-dependency term
///
/// ```text
/// step ≥ max_j  Σ_{s<j} (fw_s + bw_s)  +  m · (fw_j + bw_j)
/// ```
///
/// Transfers, collectives, sync serialization, and the optimizer pass are
/// dropped (each only adds time in the engine), and only replica 0's
/// devices are priced (the plan's per-stage time is a max over every
/// replica's), so the value never exceeds the leaf's true simulated step
/// time. Because the partition call is bit-identical memoized or cold, the
/// bound — and hence the search report it gates — does not depend on memo
/// warmth.
///
/// Returns `Ok(None)` when the leaf cannot be priced this way: the cluster
/// does not tile into `replicas` groups of depth ≥ 2, the group batch is
/// empty, or profiles are unavailable (`memoize` off).
#[allow(clippy::too_many_arguments)]
pub fn pipeline_leaf_bound(
    graph: &Graph,
    cluster: &whale_hardware::Cluster,
    config: &crate::planner::PlannerConfig,
    replicas: usize,
    num_micro: usize,
    gpipe: bool,
    global_batch: usize,
) -> Result<Option<f64>> {
    let n = cluster.num_gpus();
    if replicas == 0 || n == 0 || !n.is_multiple_of(replicas) || num_micro == 0 {
        return Ok(None);
    }
    let depth = n / replicas;
    if depth < 2 {
        return Ok(None);
    }
    // Replica 0's batch share, exactly as DegreeInference splits it.
    let weights: Vec<f64> = if config.hardware_aware {
        (0..replicas)
            .map(|g| {
                cluster.gpus()[g * depth..(g + 1) * depth]
                    .iter()
                    .map(|gpu| gpu.flops())
                    .sum()
            })
            .collect()
    } else {
        vec![1.0; replicas]
    };
    let group_batch = crate::partition::proportional_split(global_batch, &weights)?[0];
    if group_batch == 0 {
        return Ok(None);
    }
    let gpus: Vec<Gpu> = cluster.gpus()[..depth].to_vec();
    let micro_batch = (group_batch / num_micro).max(1);
    let (_, profiles) = pipeline_partition_profiled(
        graph,
        &config.training,
        &gpus,
        micro_batch,
        num_micro,
        gpipe,
        global_batch.max(1),
        config.hardware_aware,
        config.memoize,
    )?;
    let Some(profiles) = profiles else {
        return Ok(None);
    };
    // Price replica 0's stages the way `plan_taskgraph` + the estimator's
    // `stage_fw_bw` do, minus everything additive.
    let amp = config.training.amp;
    let bw_factor = if config.training.recompute { 3.0 } else { 2.0 };
    let m = num_micro as f64;
    let mut chain = 0.0_f64;
    let mut bound = 0.0_f64;
    for (j, profile) in profiles.iter().enumerate() {
        let gpu = &gpus[j.min(gpus.len() - 1)];
        let boost = if amp { gpu.model.amp_speedup() } else { 1.0 };
        let fw_flops_per_micro =
            profile.forward_flops_per_sample * group_batch as f64 / num_micro as f64;
        let traffic_per_micro = profile.memory_traffic_bytes_per_sample * group_batch as f64
            / num_micro as f64
            * if amp { 0.5 } else { 1.0 };
        let t = fw_flops_per_micro / (gpu.flops() * boost * config.efficiency)
            + traffic_per_micro / gpu.model.memory_bandwidth();
        let fw_bw = t * (1.0 + bw_factor);
        bound = bound.max(chain + m * fw_bw);
        chain += fw_bw;
    }
    Ok(Some(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;

    fn cfg() -> TrainingConfig {
        TrainingConfig::default()
    }

    #[test]
    fn in_flight_counts() {
        // 4 stages, 8 micro batches, backward-first: 4,3,2,1.
        assert_eq!(in_flight_micro_batches(0, 4, 8, false), 4);
        assert_eq!(in_flight_micro_batches(3, 4, 8, false), 1);
        // GPipe keeps all 8 everywhere.
        assert_eq!(in_flight_micro_batches(0, 4, 8, true), 8);
        // Fewer micro batches than stages caps at m.
        assert_eq!(in_flight_micro_batches(0, 8, 2, false), 2);
    }

    #[test]
    fn even_cut_on_homogeneous_gpus() {
        let g = models::bert_base(4, 64).unwrap();
        let c = Cluster::parse("4xV100").unwrap();
        let part = pipeline_partition(&g, &cfg(), c.gpus(), 1, 4, false, 4, true).unwrap();
        assert_eq!(part.num_stages(), 4);
        let f = stage_flops(&g, &part);
        let mean = f.iter().sum::<f64>() / 4.0;
        for (i, &s) in f.iter().enumerate() {
            assert!(
                (s - mean).abs() / mean < 0.35,
                "stage {i} flops {s} vs mean {mean}"
            );
        }
    }

    #[test]
    fn hardware_aware_gives_v100_more_flops() {
        let g = models::bert_large(4, 128).unwrap();
        // Stage GPUs: P100, P100, V100, V100 (the paper's baseline order).
        let c = Cluster::parse("2xP100,2xV100").unwrap();
        let aware = pipeline_partition(&g, &cfg(), c.gpus(), 1, 4, false, 4, true).unwrap();
        let f = stage_flops(&g, &aware);
        let p100_mean = (f[0] + f[1]) / 2.0;
        let v100_mean = (f[2] + f[3]) / 2.0;
        assert!(
            v100_mean > p100_mean * 1.3,
            "V100 stages should carry more: {f:?}"
        );

        let baseline = pipeline_partition(&g, &cfg(), c.gpus(), 1, 4, false, 4, false).unwrap();
        let fb = stage_flops(&g, &baseline);
        let spread = (fb.iter().cloned().fold(f64::MIN, f64::max)
            - fb.iter().cloned().fold(f64::MAX, f64::min))
            / fb.iter().sum::<f64>();
        assert!(spread < 0.3, "baseline should be near-even: {fb:?}");
    }

    #[test]
    fn stages_cover_all_ops_without_overlap() {
        let g = models::t5_large(2, 64, 64).unwrap();
        let c = Cluster::parse("2xP100,2xV100").unwrap();
        let part = pipeline_partition(&g, &cfg(), c.gpus(), 1, 4, false, 2, true).unwrap();
        assert_eq!(part.cuts[0], 0);
        assert_eq!(*part.cuts.last().unwrap(), g.len());
        let total: usize = (0..part.num_stages())
            .map(|k| part.stage_ops(k).len())
            .sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn memoized_partition_is_bit_identical_to_uncached() {
        // Sweep configurations with and without memory pressure (the large
        // micro batches push the P100 stages into PSVF) and require the
        // exact same cuts and PSVF trace from the cached and uncached paths.
        let g = models::bert_large(8, 128).unwrap();
        let c = Cluster::parse("2xP100,2xV100").unwrap();
        let cfg = TrainingConfig::default();
        for aware in [false, true] {
            for (micro_batch, num_micro, gpipe) in [(1, 4, false), (8, 8, false), (16, 8, true)] {
                let fast = pipeline_partition_opts(
                    &g,
                    &cfg,
                    c.gpus(),
                    micro_batch,
                    num_micro,
                    gpipe,
                    8,
                    aware,
                    true,
                );
                let slow = pipeline_partition_opts(
                    &g,
                    &cfg,
                    c.gpus(),
                    micro_batch,
                    num_micro,
                    gpipe,
                    8,
                    aware,
                    false,
                );
                match (fast, slow) {
                    (Ok(f), Ok(s)) => assert_eq!(f, s, "aware={aware} mb={micro_batch}"),
                    (Err(f), Err(s)) => assert_eq!(f.to_string(), s.to_string()),
                    (f, s) => panic!("divergent outcomes: {f:?} vs {s:?}"),
                }
            }
        }
    }

    #[test]
    fn cross_plan_memo_hits_are_bit_identical() {
        // The search's leaf pattern: one (graph, cluster) pair swept over
        // many (micro_batch, num_micro, schedule) leaves. After the first
        // call every memoized call is a memo hit; each must equal the
        // uncached compute bit-for-bit, including leaves whose memory
        // pressure forces the PSVF fall-through.
        let g = models::bert_large(8, 128).unwrap();
        let c = Cluster::parse("2xP100,2xV100").unwrap();
        let cfg = TrainingConfig::default();
        for num_micro in [1usize, 2, 4, 8, 16] {
            for micro_batch in [1usize, 4, 16] {
                for gpipe in [false, true] {
                    let hit = pipeline_partition_profiled(
                        &g,
                        &cfg,
                        c.gpus(),
                        micro_batch,
                        num_micro,
                        gpipe,
                        8,
                        true,
                        true,
                    )
                    .unwrap();
                    let cold = pipeline_partition_profiled(
                        &g,
                        &cfg,
                        c.gpus(),
                        micro_batch,
                        num_micro,
                        gpipe,
                        8,
                        true,
                        false,
                    )
                    .unwrap();
                    assert_eq!(
                        hit.0, cold.0,
                        "mb={micro_batch} m={num_micro} gpipe={gpipe}"
                    );
                    // The memoized path must also hand back the profiles the
                    // planner's stage loop needs, for the repaired cuts.
                    let profiles = hit.1.expect("memoized call returns profiles");
                    for (k, p) in profiles.iter().enumerate() {
                        let ops: Vec<OpId> = hit.0.stage_ops(k);
                        assert_eq!(*p, CostProfile::from_ops(&g, &ops, 8));
                    }
                }
            }
        }
    }

    #[test]
    fn shift_op_preserves_coverage() {
        let g = models::bert_base(2, 64).unwrap();
        let c = Cluster::parse("4xV100").unwrap();
        let config = cfg();
        let mut w = PipeWorkload::new(
            &g,
            balanced_cuts(
                &g.ops()
                    .iter()
                    .map(|o| o.forward_flops())
                    .collect::<Vec<_>>(),
                &[1.0; 4],
            )
            .unwrap(),
            &config,
            c.gpus(),
            1,
            4,
            false,
            2,
            true,
        );
        let before = w.cuts.clone();
        // Fig. 11: shift one op from stage 0 to stage 2.
        assert!(w.shift(0, 2));
        assert_eq!(w.cuts[0], before[0]);
        assert_eq!(w.cuts[1], before[1] - 1);
        assert_eq!(w.cuts[2], before[2] - 1);
        assert_eq!(w.cuts[3], before[3]);
        // And back.
        assert!(w.shift(2, 0));
        assert_eq!(w.cuts, before);
    }

    #[test]
    fn shift_refuses_to_empty_a_stage() {
        let g = models::bert_base(2, 64).unwrap();
        let c = Cluster::parse("3xV100").unwrap();
        let n = g.len();
        let config = cfg();
        // Stage 1 has exactly one op.
        let mut w = PipeWorkload::new(
            &g,
            vec![0, 1, 2, n],
            &config,
            c.gpus(),
            1,
            4,
            false,
            2,
            true,
        );
        // Moving from stage 0 through stage 1 would empty stage 0 (one op).
        assert!(!w.shift(0, 2));
        assert_eq!(
            w.cuts,
            vec![0, 1, 2, n],
            "failed shift must not corrupt cuts"
        );
    }
}

#[cfg(test)]
mod pipe_property_tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;

    /// Any mix of stage GPUs and micro-batch counts yields a partition that
    /// covers all ops exactly once with non-empty stages. The parameter
    /// space is small enough to sweep exhaustively instead of sampling.
    #[test]
    fn partition_always_covers() {
        let g = models::bert_base(8, 64).unwrap();
        let cfg = TrainingConfig::default();
        for v100s in 0usize..4 {
            for p100s in 0usize..4 {
                if v100s + p100s == 0 {
                    continue;
                }
                for micro in [1usize, 5, 15] {
                    for aware in [false, true] {
                        let spec = match (v100s, p100s) {
                            (0, p) => format!("{p}xP100"),
                            (v, 0) => format!("{v}xV100"),
                            (v, p) => format!("{v}xV100,{p}xP100"),
                        };
                        let cluster = Cluster::parse(&spec).unwrap();
                        let part =
                            pipeline_partition(&g, &cfg, cluster.gpus(), 1, micro, false, 8, aware)
                                .unwrap();
                        assert_eq!(part.num_stages(), cluster.num_gpus());
                        assert_eq!(part.cuts[0], 0);
                        assert_eq!(*part.cuts.last().unwrap(), g.len());
                        for w in part.cuts.windows(2) {
                            assert!(w[1] > w[0]);
                        }
                        // Hardware awareness must never hand a P100 stage
                        // more FLOPs than the heaviest V100 stage (when both
                        // kinds exist).
                        if aware && v100s > 0 && p100s > 0 {
                            let f = stage_flops(&g, &part);
                            let max_p100 = cluster
                                .gpus()
                                .iter()
                                .zip(&f)
                                .filter(|(g, _)| g.model == whale_hardware::GpuModel::P100_16GB)
                                .map(|(_, &x)| x)
                                .fold(0.0f64, f64::max);
                            let max_v100 = cluster
                                .gpus()
                                .iter()
                                .zip(&f)
                                .filter(|(g, _)| g.model == whale_hardware::GpuModel::V100_32GB)
                                .map(|(_, &x)| x)
                                .fold(0.0f64, f64::max);
                            assert!(
                                max_v100 * 1.2 >= max_p100,
                                "V100 stages should carry at least comparable work: \
                                 v={max_v100} p={max_p100}"
                            );
                        }
                    }
                }
            }
        }
    }
}
