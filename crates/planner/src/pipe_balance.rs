//! Hardware-aware pipeline partitioning — Algorithm 3 of the paper.
//!
//! The forward ops are cut into contiguous stages whose FLOPs are
//! proportional to the stage GPUs' FLOPS; if a stage overflows its GPU's
//! memory, PSVF repairs the cut with `shift_op` — moving one boundary
//! operation at a time from the peak stage toward the valley stage through
//! the intermediate stages (Fig. 11), which preserves topological order.

use crate::error::{PlanError, Result};
use crate::partition::{balanced_cuts, group_costs};
use crate::psvf::{psvf, PsvfReport, Workload};
use whale_graph::{CostProfile, Graph, OpId, TrainingConfig};
use whale_hardware::Gpu;

/// Outcome of Algorithm 3.
#[derive(Debug, Clone, PartialEq)]
pub struct PipePartition {
    /// Cut points over the op sequence: stage `k` owns ops
    /// `[cuts[k], cuts[k+1])`.
    pub cuts: Vec<usize>,
    /// PSVF trace when the FLOP-proportional cut overflowed memory.
    pub psvf: Option<PsvfReport>,
}

impl PipePartition {
    /// Op ids of stage `k`.
    pub fn stage_ops(&self, k: usize) -> Vec<OpId> {
        (self.cuts[k]..self.cuts[k + 1]).map(OpId).collect()
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.cuts.len() - 1
    }
}

/// In-flight micro-batch count per stage under a backward-first (1F1B)
/// schedule: stage `i` of `s` holds at most `min(s − i, m)` activations
/// (ref \[13\]); under GPipe every stage holds all `m`.
pub fn in_flight_micro_batches(
    stage: usize,
    num_stages: usize,
    num_micro: usize,
    gpipe: bool,
) -> usize {
    if gpipe {
        num_micro
    } else {
        (num_stages - stage).min(num_micro)
    }
}

/// Memoized per-stage cost terms. Every PSVF iteration queries the memory
/// ratio of *all* stages; without the cache each query re-profiles the
/// stage's whole op range, making one PSVF step O(stages × ops). The cache
/// stores the (memory, flops) pair per stage and a `shift` refreshes only
/// the stages whose boundaries moved, so steady-state queries are O(1).
struct StageCostCache {
    mem: Vec<u64>,
    flops: Vec<f64>,
    /// Full per-stage profiles for the current cuts. The planner's stage
    /// loop needs exactly these (`TaskGraph::profile` over the same op
    /// ranges at the same reference batch), so the partition hands them
    /// back and the planner skips its own re-profiling pass.
    profiles: Vec<CostProfile>,
}

/// The `shift_op` workload over stage cut points.
struct PipeWorkload<'a> {
    graph: &'a Graph,
    cuts: Vec<usize>,
    cfg: &'a TrainingConfig,
    gpus: &'a [Gpu],
    micro_batch: usize,
    num_micro: usize,
    gpipe: bool,
    ref_batch: usize,
    /// `None` disables memoization (the planner-baseline path that
    /// `fastpath_bench` measures the speedup against).
    cache: Option<StageCostCache>,
}

impl<'a> PipeWorkload<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        graph: &'a Graph,
        cuts: Vec<usize>,
        cfg: &'a TrainingConfig,
        gpus: &'a [Gpu],
        micro_batch: usize,
        num_micro: usize,
        gpipe: bool,
        ref_batch: usize,
        memoize: bool,
    ) -> PipeWorkload<'a> {
        let mut w = PipeWorkload {
            graph,
            cuts,
            cfg,
            gpus,
            micro_batch,
            num_micro,
            gpipe,
            ref_batch,
            cache: None,
        };
        if memoize {
            let n = w.gpus.len();
            let mut cache = StageCostCache {
                mem: vec![0; n],
                flops: vec![0.0; n],
                profiles: Vec::with_capacity(n),
            };
            for i in 0..n {
                let p = w.stage_profile(i);
                let (m, f) = w.stage_cost_of(i, &p);
                cache.mem[i] = m;
                cache.flops[i] = f;
                cache.profiles.push(p);
            }
            w.cache = Some(cache);
        }
        w
    }

    fn stage_profile(&self, i: usize) -> CostProfile {
        let ops: Vec<OpId> = (self.cuts[i]..self.cuts[i + 1]).map(OpId).collect();
        CostProfile::from_ops(self.graph, &ops, self.ref_batch)
    }

    /// (memory, flops) of stage `i` given its profile — the single source of
    /// truth both the direct queries and the cache refresh go through, so
    /// cached and uncached runs are bit-identical.
    fn stage_cost_of(&self, i: usize, p: &CostProfile) -> (u64, f64) {
        let act_mult =
            in_flight_micro_batches(i, self.gpus.len(), self.num_micro, self.gpipe) as f64;
        (
            self.cfg.memory_bytes(p, self.micro_batch, act_mult),
            self.cfg.step_flops(p, self.micro_batch),
        )
    }

    /// Uncached (memory, flops) of stage `i`.
    fn stage_cost(&self, i: usize) -> (u64, f64) {
        let p = self.stage_profile(i);
        self.stage_cost_of(i, &p)
    }

    /// Refresh the cache for stages whose op ranges changed.
    fn refresh(&mut self, lo: usize, hi: usize) {
        if self.cache.is_none() {
            return;
        }
        for i in lo..=hi {
            let p = self.stage_profile(i);
            let (m, f) = self.stage_cost_of(i, &p);
            let cache = self.cache.as_mut().expect("checked above");
            cache.mem[i] = m;
            cache.flops[i] = f;
            cache.profiles[i] = p;
        }
    }
}

impl Workload for PipeWorkload<'_> {
    fn len(&self) -> usize {
        self.gpus.len()
    }
    fn mem_bytes(&self, i: usize) -> u64 {
        match &self.cache {
            Some(c) => c.mem[i],
            None => self.stage_cost(i).0,
        }
    }
    fn mem_capacity(&self, i: usize) -> u64 {
        self.gpus[i].memory_bytes()
    }
    fn flops(&self, i: usize) -> f64 {
        match &self.cache {
            Some(c) => c.flops[i],
            None => self.stage_cost(i).1,
        }
    }
    fn flops_capacity(&self, i: usize) -> f64 {
        self.gpus[i].flops()
    }
    fn shift(&mut self, from: usize, to: usize) -> bool {
        // Fig. 11: a shift from stage `from` to stage `to` ripples one op
        // across each intervening boundary, keeping topological order.
        if from < to {
            // Boundaries from+1 ..= to move left by one.
            for k in from + 1..=to {
                if self.cuts[k] - 1 <= self.cuts[k - 1] {
                    // Some intermediate stage would become empty: revert.
                    for j in (from + 1..k).rev() {
                        self.cuts[j] += 1;
                    }
                    return false;
                }
                self.cuts[k] -= 1;
            }
            self.refresh(from, to);
            true
        } else if from > to {
            for k in (to + 1..=from).rev() {
                if self.cuts[k] + 1 >= self.cuts[k + 1] {
                    for j in k + 1..=from {
                        self.cuts[j] -= 1;
                    }
                    return false;
                }
                self.cuts[k] += 1;
            }
            self.refresh(to, from);
            true
        } else {
            false
        }
    }
}

/// Algorithm 3: hardware-aware pipeline partition of `graph` onto one GPU
/// per stage.
///
/// `micro_batch` is the per-micro-batch sample count; `num_micro` the number
/// of in-flight micro batches (for activation memory); `gpipe` selects the
/// flush schedule's memory model. With `hardware_aware = false` the cut is
/// FLOP-even regardless of GPU type — the Fig. 18 baseline.
#[allow(clippy::too_many_arguments)]
pub fn pipeline_partition(
    graph: &Graph,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    micro_batch: usize,
    num_micro: usize,
    gpipe: bool,
    ref_batch: usize,
    hardware_aware: bool,
) -> Result<PipePartition> {
    pipeline_partition_opts(
        graph,
        cfg,
        gpus,
        micro_batch,
        num_micro,
        gpipe,
        ref_batch,
        hardware_aware,
        true,
    )
}

/// [`pipeline_partition`] with the per-stage cost memoization made explicit.
/// `memoize = false` recomputes every profile query from scratch — the
/// pre-fast-path behavior kept for benchmarking; results are bit-identical
/// either way.
#[allow(clippy::too_many_arguments)]
pub fn pipeline_partition_opts(
    graph: &Graph,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    micro_batch: usize,
    num_micro: usize,
    gpipe: bool,
    ref_batch: usize,
    hardware_aware: bool,
    memoize: bool,
) -> Result<PipePartition> {
    pipeline_partition_profiled(
        graph,
        cfg,
        gpus,
        micro_batch,
        num_micro,
        gpipe,
        ref_batch,
        hardware_aware,
        memoize,
    )
    .map(|(part, _)| part)
}

/// [`pipeline_partition_opts`] that also returns the memoized per-stage
/// [`CostProfile`]s for the final cuts (`None` when `memoize` is off). The
/// profiles equal `CostProfile::from_ops` over each stage's op range at
/// `ref_batch` — exactly what the planner's stage loop would recompute — so
/// callers can skip that second profiling pass.
#[allow(clippy::too_many_arguments)]
pub fn pipeline_partition_profiled(
    graph: &Graph,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    micro_batch: usize,
    num_micro: usize,
    gpipe: bool,
    ref_batch: usize,
    hardware_aware: bool,
    memoize: bool,
) -> Result<(PipePartition, Option<Vec<CostProfile>>)> {
    if gpus.is_empty() {
        return Err(PlanError::BadConfig(
            "pipeline needs at least one stage GPU".into(),
        ));
    }
    let costs: Vec<f64> = graph.ops().iter().map(|op| op.forward_flops()).collect();
    let weights: Vec<f64> = if hardware_aware {
        gpus.iter().map(|g| g.flops()).collect()
    } else {
        vec![1.0; gpus.len()]
    };
    let cuts = balanced_cuts(&costs, &weights)?;
    let mut w = PipeWorkload::new(
        graph,
        cuts,
        cfg,
        gpus,
        micro_batch,
        num_micro,
        gpipe,
        ref_batch,
        memoize,
    );
    let report = if hardware_aware {
        let overflow = (0..w.len()).any(|i| w.mem_bytes(i) > w.mem_capacity(i));
        if overflow {
            Some(psvf(&mut w)?)
        } else {
            None
        }
    } else {
        None
    };
    let profiles = w.cache.map(|c| c.profiles);
    Ok((
        PipePartition {
            cuts: w.cuts,
            psvf: report,
        },
        profiles,
    ))
}

/// Per-stage forward FLOPs of a partition (diagnostics).
pub fn stage_flops(graph: &Graph, part: &PipePartition) -> Vec<f64> {
    let costs: Vec<f64> = graph.ops().iter().map(|op| op.forward_flops()).collect();
    group_costs(&costs, &part.cuts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;

    fn cfg() -> TrainingConfig {
        TrainingConfig::default()
    }

    #[test]
    fn in_flight_counts() {
        // 4 stages, 8 micro batches, backward-first: 4,3,2,1.
        assert_eq!(in_flight_micro_batches(0, 4, 8, false), 4);
        assert_eq!(in_flight_micro_batches(3, 4, 8, false), 1);
        // GPipe keeps all 8 everywhere.
        assert_eq!(in_flight_micro_batches(0, 4, 8, true), 8);
        // Fewer micro batches than stages caps at m.
        assert_eq!(in_flight_micro_batches(0, 8, 2, false), 2);
    }

    #[test]
    fn even_cut_on_homogeneous_gpus() {
        let g = models::bert_base(4, 64).unwrap();
        let c = Cluster::parse("4xV100").unwrap();
        let part = pipeline_partition(&g, &cfg(), c.gpus(), 1, 4, false, 4, true).unwrap();
        assert_eq!(part.num_stages(), 4);
        let f = stage_flops(&g, &part);
        let mean = f.iter().sum::<f64>() / 4.0;
        for (i, &s) in f.iter().enumerate() {
            assert!(
                (s - mean).abs() / mean < 0.35,
                "stage {i} flops {s} vs mean {mean}"
            );
        }
    }

    #[test]
    fn hardware_aware_gives_v100_more_flops() {
        let g = models::bert_large(4, 128).unwrap();
        // Stage GPUs: P100, P100, V100, V100 (the paper's baseline order).
        let c = Cluster::parse("2xP100,2xV100").unwrap();
        let aware = pipeline_partition(&g, &cfg(), c.gpus(), 1, 4, false, 4, true).unwrap();
        let f = stage_flops(&g, &aware);
        let p100_mean = (f[0] + f[1]) / 2.0;
        let v100_mean = (f[2] + f[3]) / 2.0;
        assert!(
            v100_mean > p100_mean * 1.3,
            "V100 stages should carry more: {f:?}"
        );

        let baseline = pipeline_partition(&g, &cfg(), c.gpus(), 1, 4, false, 4, false).unwrap();
        let fb = stage_flops(&g, &baseline);
        let spread = (fb.iter().cloned().fold(f64::MIN, f64::max)
            - fb.iter().cloned().fold(f64::MAX, f64::min))
            / fb.iter().sum::<f64>();
        assert!(spread < 0.3, "baseline should be near-even: {fb:?}");
    }

    #[test]
    fn stages_cover_all_ops_without_overlap() {
        let g = models::t5_large(2, 64, 64).unwrap();
        let c = Cluster::parse("2xP100,2xV100").unwrap();
        let part = pipeline_partition(&g, &cfg(), c.gpus(), 1, 4, false, 2, true).unwrap();
        assert_eq!(part.cuts[0], 0);
        assert_eq!(*part.cuts.last().unwrap(), g.len());
        let total: usize = (0..part.num_stages())
            .map(|k| part.stage_ops(k).len())
            .sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn memoized_partition_is_bit_identical_to_uncached() {
        // Sweep configurations with and without memory pressure (the large
        // micro batches push the P100 stages into PSVF) and require the
        // exact same cuts and PSVF trace from the cached and uncached paths.
        let g = models::bert_large(8, 128).unwrap();
        let c = Cluster::parse("2xP100,2xV100").unwrap();
        let cfg = TrainingConfig::default();
        for aware in [false, true] {
            for (micro_batch, num_micro, gpipe) in [(1, 4, false), (8, 8, false), (16, 8, true)] {
                let fast = pipeline_partition_opts(
                    &g,
                    &cfg,
                    c.gpus(),
                    micro_batch,
                    num_micro,
                    gpipe,
                    8,
                    aware,
                    true,
                );
                let slow = pipeline_partition_opts(
                    &g,
                    &cfg,
                    c.gpus(),
                    micro_batch,
                    num_micro,
                    gpipe,
                    8,
                    aware,
                    false,
                );
                match (fast, slow) {
                    (Ok(f), Ok(s)) => assert_eq!(f, s, "aware={aware} mb={micro_batch}"),
                    (Err(f), Err(s)) => assert_eq!(f.to_string(), s.to_string()),
                    (f, s) => panic!("divergent outcomes: {f:?} vs {s:?}"),
                }
            }
        }
    }

    #[test]
    fn shift_op_preserves_coverage() {
        let g = models::bert_base(2, 64).unwrap();
        let c = Cluster::parse("4xV100").unwrap();
        let config = cfg();
        let mut w = PipeWorkload::new(
            &g,
            balanced_cuts(
                &g.ops()
                    .iter()
                    .map(|o| o.forward_flops())
                    .collect::<Vec<_>>(),
                &[1.0; 4],
            )
            .unwrap(),
            &config,
            c.gpus(),
            1,
            4,
            false,
            2,
            true,
        );
        let before = w.cuts.clone();
        // Fig. 11: shift one op from stage 0 to stage 2.
        assert!(w.shift(0, 2));
        assert_eq!(w.cuts[0], before[0]);
        assert_eq!(w.cuts[1], before[1] - 1);
        assert_eq!(w.cuts[2], before[2] - 1);
        assert_eq!(w.cuts[3], before[3]);
        // And back.
        assert!(w.shift(2, 0));
        assert_eq!(w.cuts, before);
    }

    #[test]
    fn shift_refuses_to_empty_a_stage() {
        let g = models::bert_base(2, 64).unwrap();
        let c = Cluster::parse("3xV100").unwrap();
        let n = g.len();
        let config = cfg();
        // Stage 1 has exactly one op.
        let mut w = PipeWorkload::new(
            &g,
            vec![0, 1, 2, n],
            &config,
            c.gpus(),
            1,
            4,
            false,
            2,
            true,
        );
        // Moving from stage 0 through stage 1 would empty stage 0 (one op).
        assert!(!w.shift(0, 2));
        assert_eq!(
            w.cuts,
            vec![0, 1, 2, n],
            "failed shift must not corrupt cuts"
        );
    }
}

#[cfg(test)]
mod pipe_property_tests {
    use super::*;
    use whale_graph::models;
    use whale_hardware::Cluster;

    /// Any mix of stage GPUs and micro-batch counts yields a partition that
    /// covers all ops exactly once with non-empty stages. The parameter
    /// space is small enough to sweep exhaustively instead of sampling.
    #[test]
    fn partition_always_covers() {
        let g = models::bert_base(8, 64).unwrap();
        let cfg = TrainingConfig::default();
        for v100s in 0usize..4 {
            for p100s in 0usize..4 {
                if v100s + p100s == 0 {
                    continue;
                }
                for micro in [1usize, 5, 15] {
                    for aware in [false, true] {
                        let spec = match (v100s, p100s) {
                            (0, p) => format!("{p}xP100"),
                            (v, 0) => format!("{v}xV100"),
                            (v, p) => format!("{v}xV100,{p}xP100"),
                        };
                        let cluster = Cluster::parse(&spec).unwrap();
                        let part =
                            pipeline_partition(&g, &cfg, cluster.gpus(), 1, micro, false, 8, aware)
                                .unwrap();
                        assert_eq!(part.num_stages(), cluster.num_gpus());
                        assert_eq!(part.cuts[0], 0);
                        assert_eq!(*part.cuts.last().unwrap(), g.len());
                        for w in part.cuts.windows(2) {
                            assert!(w[1] > w[0]);
                        }
                        // Hardware awareness must never hand a P100 stage
                        // more FLOPs than the heaviest V100 stage (when both
                        // kinds exist).
                        if aware && v100s > 0 && p100s > 0 {
                            let f = stage_flops(&g, &part);
                            let max_p100 = cluster
                                .gpus()
                                .iter()
                                .zip(&f)
                                .filter(|(g, _)| g.model == whale_hardware::GpuModel::P100_16GB)
                                .map(|(_, &x)| x)
                                .fold(0.0f64, f64::max);
                            let max_v100 = cluster
                                .gpus()
                                .iter()
                                .zip(&f)
                                .filter(|(g, _)| g.model == whale_hardware::GpuModel::V100_32GB)
                                .map(|(_, &x)| x)
                                .fold(0.0f64, f64::max);
                            assert!(
                                max_v100 * 1.2 >= max_p100,
                                "V100 stages should carry at least comparable work: \
                                 v={max_v100} p={max_p100}"
                            );
                        }
                    }
                }
            }
        }
    }
}
