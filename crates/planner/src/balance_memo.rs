//! Memoized Balance-pass helpers for the staged pipeline.
//!
//! The Balance pass plans every TaskGraph once per plan replica. Deep
//! interleaved models (the MoE zoo) multiply hundreds of TaskGraphs by tens
//! of replica groups, and the monolithic helpers re-derive the same pure
//! results — [`dp_partition`] batch assignments and [`match_split_pattern`]
//! shard plans — for every `(TaskGraph, group)` pair even though the inputs
//! repeat almost verbatim across groups.
//!
//! This module is a transplant of [`crate::planner::plan_taskgraph`] /
//! [`crate::planner::build_grad_groups`] that threads a per-Balance-run
//! [`BalanceMemo`]:
//!
//! * `dp_partition` results are memoized on their **exact** inputs — the
//!   TaskGraph (profile + strategies + activation multiplier are functions
//!   of it within one run), the group batch, and the `(model,
//!   throughput_scale)` signature of the device slice (the only GPU fields
//!   the partitioner reads). `dp_partition` is a pure function, so replaying
//!   a memoized result is bit-identical to recomputing it.
//! * `match_split_pattern` results are memoized per `(TaskGraph, degree)` —
//!   the pattern depends only on the graph, the TaskGraph's ops, and the
//!   shard count, all fixed across groups.
//!
//! The monolithic [`crate::planner::plan_reference`] keeps calling the
//! unmemoized originals: it is the golden reference the pipeline is compared
//! against, so its hot path stays untouched.
//!
//! Bit-identity of the pipeline against the reference is pinned by the
//! zoo × cluster golden matrix in `tests/compile_pipeline.rs`.

use std::collections::HashMap;

use whale_graph::CostProfile;
use whale_hardware::GpuModel;
use whale_ir::Primitive;

use crate::dp_balance::{dp_partition, DpPartition};
use crate::error::{PlanError, Result};
use crate::partition::proportional_split;
use crate::pipe_balance::in_flight_micro_batches;
use crate::plan::{CollectiveTask, DeviceWork};
use crate::planner::{nested_degrees, PlanTgArgs};
use crate::shard::{match_split_pattern, SplitPlan};

/// GPU signature as seen by the DP partitioner: hardware model plus the
/// bit pattern of the effective-throughput scale. Two devices with equal
/// signatures are indistinguishable to [`dp_partition`].
type GpuSig = (GpuModel, u64);

/// Signature-matched memo bucket: every partition computed for one
/// `(tg.index, batch)` cell, keyed by the device-slice signature it was
/// derived from.
type DpBucket = Vec<(Vec<GpuSig>, DpPartition)>;

/// Per-Balance-run memo for the pure planning subroutines.
#[derive(Default)]
pub(crate) struct BalanceMemo {
    /// `(tg.index, batch)` → signature-matched [`dp_partition`] results.
    /// Buckets are tiny (distinct signatures per TaskGraph and batch — one
    /// on homogeneous clusters), so lookup is a scratch-signature build plus
    /// a short linear scan, with no allocation on hits.
    dp: HashMap<(usize, usize), DpBucket>,
    /// `(tg.index, degree)` → shard plan.
    splits: HashMap<(usize, usize), SplitPlan>,
    /// Reused signature buffer.
    sig: Vec<GpuSig>,
}

impl BalanceMemo {
    #[allow(clippy::too_many_arguments)]
    fn dp_partition_memo(
        &mut self,
        tg_index: usize,
        profile: &CostProfile,
        tcfg: &whale_graph::TrainingConfig,
        gpus: &[whale_hardware::Gpu],
        batch: usize,
        act_mult: f64,
        hardware_aware: bool,
    ) -> Result<DpPartition> {
        self.sig.clear();
        self.sig
            .extend(gpus.iter().map(|g| (g.model, g.throughput_scale.to_bits())));
        let bucket = self.dp.entry((tg_index, batch)).or_default();
        if let Some((_, dp)) = bucket.iter().find(|(sig, _)| *sig == self.sig) {
            return Ok(dp.clone());
        }
        let dp = dp_partition(profile, tcfg, gpus, batch, act_mult, hardware_aware)?;
        bucket.push((self.sig.clone(), dp.clone()));
        Ok(dp)
    }

    fn split_plan_memo(&mut self, a: &PlanTgArgs<'_>, degree: usize) -> Result<SplitPlan> {
        if let Some(plan) = self.splits.get(&(a.tg.index, degree)) {
            return Ok(plan.clone());
        }
        let plan = match_split_pattern(&a.ir.graph, &a.tg.ops, degree)?;
        self.splits.insert((a.tg.index, degree), plan.clone());
        Ok(plan)
    }
}

/// Memoizing transplant of [`crate::planner::plan_taskgraph`]: plan one
/// TaskGraph on one plan replica's virtual device. Byte-for-byte the same
/// control flow; the two `dp_partition` call sites and the
/// `match_split_pattern` site go through `memo`.
pub(crate) fn plan_taskgraph_memo(
    a: PlanTgArgs<'_>,
    memo: &mut BalanceMemo,
    devices: &mut Vec<DeviceWork>,
    collectives: &mut Vec<CollectiveTask>,
) -> Result<()> {
    let in_flight = in_flight_micro_batches(a.stage_index, a.num_stages, a.num_micro, a.gpipe);
    let act_mult = in_flight as f64 / a.num_micro as f64;
    let k = a.vd_gpus.len();
    let fw_per_sample = a.profile.forward_flops_per_sample;

    match a.tg.strategies.as_slice() {
        // Pure data parallelism (possibly via default scope).
        [] | [Primitive::Replica] => {
            let gpus: Vec<whale_hardware::Gpu> = a
                .vd_gpus
                .iter()
                .map(|&id| Ok(*a.cluster.gpu(id)?))
                .collect::<Result<_>>()?;
            // ZeRO shards across every replica of this TaskGraph: in-group
            // replicas times plan-level copies.
            let mut tcfg = a.config.training;
            tcfg.dp_shards = (k * a.outer_dp).max(1);
            let dp = memo.dp_partition_memo(
                a.tg.index,
                a.profile,
                &tcfg,
                &gpus,
                a.group_batch,
                act_mult,
                a.config.hardware_aware,
            )?;
            for (i, &gpu) in a.vd_gpus.iter().enumerate() {
                let bs = dp.batch_sizes[i];
                devices.push(DeviceWork {
                    gpu,
                    fw_flops_per_micro: fw_per_sample * bs as f64 / a.num_micro as f64,
                    mem_traffic_per_micro: a.profile.memory_traffic_bytes_per_sample * bs as f64
                        / a.num_micro as f64,
                    mem_bytes: tcfg.memory_bytes(a.profile, bs, act_mult),
                    samples_per_step: bs,
                });
            }
        }
        // Tensor model parallelism.
        [Primitive::Split] => {
            shard_onto_memo(
                &a,
                memo,
                a.vd_gpus,
                a.group_batch,
                act_mult,
                devices,
                collectives,
            )?;
        }
        // Manual grouping: the TaskGraph runs whole on one GPU per replica.
        [Primitive::Stage] => {
            if k != 1 {
                return Err(PlanError::BadDeviceAssignment(format!(
                    "stage TaskGraph {} needs a 1-GPU virtual device, got {k}",
                    a.tg.index
                )));
            }
            let mut tcfg = a.config.training;
            tcfg.dp_shards = a.outer_dp.max(1);
            devices.push(DeviceWork {
                gpu: a.vd_gpus[0],
                fw_flops_per_micro: fw_per_sample * a.group_batch as f64 / a.num_micro as f64,
                mem_traffic_per_micro: a.profile.memory_traffic_bytes_per_sample
                    * a.group_batch as f64
                    / a.num_micro as f64,
                mem_bytes: tcfg.memory_bytes(a.profile, a.group_batch, act_mult),
                samples_per_step: a.group_batch,
            });
        }
        // Fig. 6 TG4: split nested inside replica — shard groups replicated.
        [Primitive::Split, Primitive::Replica] => {
            let (s, r) = nested_degrees(k);
            let sub_batches = proportional_split(a.group_batch, &vec![1.0; r])?;
            for (rep, chunk) in a.vd_gpus.chunks(s).enumerate() {
                shard_onto_memo(
                    &a,
                    memo,
                    chunk,
                    sub_batches[rep],
                    act_mult,
                    devices,
                    collectives,
                )?;
            }
        }
        // Replica nested inside split: replica groups each own a shard.
        [Primitive::Replica, Primitive::Split] => {
            let (s, r) = nested_degrees(k);
            for shard_gpus in a.vd_gpus.chunks(r) {
                let gpus: Vec<whale_hardware::Gpu> = shard_gpus
                    .iter()
                    .map(|&id| Ok(*a.cluster.gpu(id)?))
                    .collect::<Result<_>>()?;
                let dp = memo.dp_partition_memo(
                    a.tg.index,
                    a.profile,
                    &a.config.training,
                    &gpus,
                    a.group_batch,
                    act_mult / s as f64,
                    a.config.hardware_aware,
                )?;
                for (i, &gpu) in shard_gpus.iter().enumerate() {
                    let bs = dp.batch_sizes[i];
                    devices.push(DeviceWork {
                        gpu,
                        fw_flops_per_micro: fw_per_sample * bs as f64
                            / (a.num_micro as f64 * s as f64),
                        mem_traffic_per_micro: a.profile.memory_traffic_bytes_per_sample
                            * bs as f64
                            / (a.num_micro as f64 * s as f64),
                        mem_bytes: a.config.training.memory_bytes(
                            a.profile,
                            bs,
                            act_mult / s as f64,
                        ),
                        samples_per_step: bs,
                    });
                }
            }
        }
        other => {
            return Err(PlanError::BadIr(format!(
                "unsupported strategy nesting {other:?} on TaskGraph {}",
                a.tg.index
            )));
        }
    }
    Ok(())
}

/// Memoizing transplant of [`crate::planner::shard_onto`].
fn shard_onto_memo(
    a: &PlanTgArgs<'_>,
    memo: &mut BalanceMemo,
    shard_gpus: &[usize],
    batch: usize,
    act_mult: f64,
    devices: &mut Vec<DeviceWork>,
    collectives: &mut Vec<CollectiveTask>,
) -> Result<()> {
    let k = shard_gpus.len();
    let split = memo.split_plan_memo(a, k)?;
    let fw_per_sample = a.profile.forward_flops_per_sample;
    // Shard-local profile: parameters and activations divided across shards.
    let shard_profile = CostProfile {
        param_count: (a.profile.param_count as f64 * split.param_fraction) as u64,
        param_bytes: (a.profile.param_bytes as f64 * split.param_fraction) as u64,
        forward_flops_per_sample: fw_per_sample * split.flops_fraction,
        activation_bytes_per_sample: a.profile.activation_bytes_per_sample * split.flops_fraction,
        checkpoint_bytes_per_sample: a.profile.checkpoint_bytes_per_sample * split.flops_fraction,
        memory_traffic_bytes_per_sample: a.profile.memory_traffic_bytes_per_sample
            * split.flops_fraction,
        ref_batch: a.profile.ref_batch,
    };
    for &gpu in shard_gpus {
        devices.push(DeviceWork {
            gpu,
            fw_flops_per_micro: fw_per_sample * split.flops_fraction * batch as f64
                / a.num_micro as f64,
            mem_traffic_per_micro: shard_profile.memory_traffic_bytes_per_sample * batch as f64
                / a.num_micro as f64,
            mem_bytes: a
                .config
                .training
                .memory_bytes(&shard_profile, batch, act_mult),
            samples_per_step: batch,
        });
    }
    let micro_scale = batch as f64 / (a.num_micro as f64 * a.ir.global_batch.max(1) as f64);
    for (kind, bytes) in &split.collectives {
        let scaled = (*bytes as f64 * micro_scale) as u64;
        if scaled == 0 || k < 2 {
            continue;
        }
        collectives.push(CollectiveTask {
            kind: *kind,
            group: shard_gpus.to_vec(),
            bytes: scaled,
            label: format!("{:?} split tg{}", split.pattern, a.tg.index),
            stage: Some(a.stage_index),
        });
    }
    Ok(())
}

/// Transplant of [`crate::planner::build_grad_groups`] that assembles the
/// common replica/split/stage groups directly instead of materializing the
/// per-GPU `positions` table first. The emitted `(label, group, bytes,
/// stage)` tuples are element-for-element identical: the direct loops visit
/// the same `(gpu, group)` pairs in the same order, and the replica-path
/// sort sees the same multiset.
pub(crate) fn build_grad_groups_fast(
    tg: &whale_ir::TaskGraph,
    profile: &CostProfile,
    vd0: &whale_hardware::VirtualDevice,
    groups: &[Vec<usize>],
    config: &crate::planner::PlannerConfig,
    out: &mut Vec<(String, Vec<usize>, u64, usize)>,
) {
    let grad_bytes_full = if config.training.amp {
        profile.param_count * 2
    } else {
        profile.param_bytes
    };
    let k = vd0.num_gpus();
    let base = groups[0][0];
    match tg.strategies.as_slice() {
        // Replicas hold full copies: one big group over every replica of
        // every plan copy.
        [] | [Primitive::Replica] => {
            let mut group: Vec<usize> = Vec::with_capacity(k * groups.len());
            for &id0 in vd0.gpu_ids() {
                for g in groups {
                    group.push(id0 - base + g[0]);
                }
            }
            group.sort_unstable();
            out.push((
                format!("dp sync tg{}", tg.index),
                group,
                grad_bytes_full,
                tg.index,
            ));
        }
        // Shards are unique; only plan-level copies need syncing.
        [Primitive::Split] => {
            let per_shard = grad_bytes_full / k.max(1) as u64;
            for (i, &id0) in vd0.gpu_ids().iter().enumerate() {
                let pos: Vec<usize> = groups.iter().map(|g| id0 - base + g[0]).collect();
                out.push((
                    format!("split sync tg{} shard{i}", tg.index),
                    pos,
                    per_shard,
                    tg.index,
                ));
            }
        }
        [Primitive::Stage] => {
            let mut pos: Vec<usize> = Vec::with_capacity(k * groups.len());
            for &id0 in vd0.gpu_ids() {
                for g in groups {
                    pos.push(id0 - base + g[0]);
                }
            }
            out.push((
                format!("stage sync tg{}", tg.index),
                pos,
                grad_bytes_full,
                tg.index,
            ));
        }
        [Primitive::Split, Primitive::Replica] => {
            let (s, _r) = nested_degrees(k);
            // Shard j is replicated in every chunk and every plan copy.
            for j in 0..s {
                let mut group = Vec::new();
                for (idx, &id0) in vd0.gpu_ids().iter().enumerate() {
                    if idx % s == j {
                        group.extend(groups.iter().map(|g| id0 - base + g[0]));
                    }
                }
                group.sort_unstable();
                out.push((
                    format!("nested sync tg{} shard{j}", tg.index),
                    group,
                    grad_bytes_full / s as u64,
                    tg.index,
                ));
            }
        }
        [Primitive::Replica, Primitive::Split] => {
            let (s, r) = nested_degrees(k);
            for shard in 0..s {
                let mut group = Vec::new();
                for (idx, &id0) in vd0.gpu_ids().iter().enumerate() {
                    if idx / r == shard {
                        group.extend(groups.iter().map(|g| id0 - base + g[0]));
                    }
                }
                group.sort_unstable();
                out.push((
                    format!("nested sync tg{} shard{shard}", tg.index),
                    group,
                    grad_bytes_full / s as u64,
                    tg.index,
                ));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{build_grad_groups, plan_taskgraph, PlannerConfig};
    use whale_hardware::Cluster;
    use whale_ir::Annotator;

    /// The memoized TaskGraph planner must reproduce the unmemoized helper
    /// bit-for-bit on a heterogeneous cluster with multiple plan replicas.
    #[test]
    fn memoized_taskgraph_planning_is_bit_identical() {
        let graph =
            whale_graph::models::m6_moe(whale_graph::models::MoeConfig::tiny(), 32).unwrap();
        let moe_ops: Vec<whale_graph::OpId> = graph
            .ops()
            .iter()
            .filter(|op| op.name.ends_with("/moe_ffn"))
            .map(|op| op.id)
            .collect();
        let mut annot = Annotator::new(graph, 32)
            .outer_replica()
            .set_default(Primitive::Replica);
        for id in moe_ops {
            annot = annot
                .annotate_ops(vec![id], vec![Primitive::Split])
                .unwrap();
        }
        let ir = annot.finish().unwrap();
        let cluster = Cluster::parse("2x(4xV100)+2x(4xP100)").unwrap();
        let config = PlannerConfig::default();
        let state = crate::pipeline::compile(&ir, &cluster, &config).unwrap();
        let d = state.degrees.as_ref().unwrap();
        let p = state.placement.as_ref().unwrap();
        let num_stages = p.task_graphs.len();

        let mut memo = BalanceMemo::default();
        for (tg_idx, tg) in p.task_graphs.iter().enumerate() {
            let profile = match &p.stage_profiles {
                Some(ps) => ps[tg_idx].clone(),
                None => tg.profile(&ir.graph, ir.global_batch.max(1)),
            };
            for (g, group) in d.groups.iter().enumerate() {
                let offset = group[0];
                let vd_gpus: Vec<usize> = p.vds0[tg_idx]
                    .gpu_ids()
                    .iter()
                    .map(|&id| id - d.groups[0][0] + offset)
                    .collect();
                let args = || PlanTgArgs {
                    ir: &ir,
                    cluster: &cluster,
                    config: &config,
                    tg,
                    profile: &profile,
                    vd_gpus: &vd_gpus,
                    group_batch: d.group_batches[g],
                    num_micro: d.num_micro,
                    stage_index: tg_idx,
                    num_stages,
                    gpipe: d.gpipe,
                    outer_dp: d.outer_dp,
                };
                let (mut dev_a, mut col_a) = (Vec::new(), Vec::new());
                let (mut dev_b, mut col_b) = (Vec::new(), Vec::new());
                plan_taskgraph(args(), &mut dev_a, &mut col_a).unwrap();
                plan_taskgraph_memo(args(), &mut memo, &mut dev_b, &mut col_b).unwrap();
                assert_eq!(dev_a, dev_b, "devices diverge on tg {tg_idx} group {g}");
                assert_eq!(col_a, col_b, "collectives diverge on tg {tg_idx} group {g}");
            }
            let mut gg_a = Vec::new();
            let mut gg_b = Vec::new();
            build_grad_groups(tg, &profile, &p.vds0[tg_idx], &d.groups, &config, &mut gg_a);
            build_grad_groups_fast(tg, &profile, &p.vds0[tg_idx], &d.groups, &config, &mut gg_b);
            assert_eq!(gg_a, gg_b, "grad groups diverge on tg {tg_idx}");
        }
    }
}
