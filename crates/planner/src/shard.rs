//! Split-pattern matching for `split` TaskGraphs (§4, "TaskGraph Partition").
//!
//! Whale shards a `split` TaskGraph by matching predefined patterns — MoE
//! (GShard-style expert sharding), Megatron-style MLP sharding, and
//! large-scale-classification FC sharding — and inserts the communication
//! each pattern requires to stay mathematically equivalent.

use whale_graph::{Graph, OpId, OpKind};
use whale_hardware::Collective;

use crate::error::{PlanError, Result};

/// Recognized sharding patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPattern {
    /// Mixture-of-Experts: experts distributed across shards; tokens routed
    /// with AllToAll dispatch and combine (paper Example 8 / ref \[21\]).
    Moe,
    /// Megatron-style MLP: column-parallel up-projection, row-parallel
    /// down-projection, one AllReduce on the block output (ref \[38\]).
    MegatronMlp,
    /// Large classification FC: the weight is column-sharded, every shard
    /// computes a logit slice, outputs are AllGathered (ref \[20\]).
    LargeFc,
    /// Fallback: even shard with an AllGather of the boundary outputs.
    Generic,
}

/// How a `split` TaskGraph is distributed over `degree` shards.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPlan {
    /// Which pattern matched.
    pub pattern: SplitPattern,
    /// Shard count.
    pub degree: usize,
    /// Fraction of the TaskGraph's FLOPs each shard executes.
    pub flops_fraction: f64,
    /// Fraction of the TaskGraph's parameters each shard stores.
    pub param_fraction: f64,
    /// Collectives per step at the graph's reference batch, as
    /// `(kind, full-tensor bytes)`; the planner scales bytes to the micro
    /// batch.
    pub collectives: Vec<(Collective, u64)>,
}

/// Match the sharding pattern of `ops` and produce a [`SplitPlan`] for
/// `degree` shards.
pub fn match_split_pattern(graph: &Graph, ops: &[OpId], degree: usize) -> Result<SplitPlan> {
    if degree == 0 {
        return Err(PlanError::BadConfig("split degree must be ≥ 1".into()));
    }
    if ops.is_empty() {
        return Err(PlanError::BadIr("split TaskGraph has no ops".into()));
    }
    let even = 1.0 / degree as f64;

    // MoE: expert weights shard perfectly; tokens cross shards twice.
    for &id in ops {
        let op = graph.op(id).map_err(|e| PlanError::BadIr(e.to_string()))?;
        if let OpKind::MoeFfn {
            tokens,
            hidden,
            top_k,
            ..
        } = op.kind
        {
            // Dispatch sends each token to `top_k` experts, combine brings
            // the results back: two AllToAlls of top_k-amplified activations.
            let payload = (tokens as u64) * (hidden as u64) * 4 * top_k as u64;
            return Ok(SplitPlan {
                pattern: SplitPattern::Moe,
                degree,
                flops_fraction: even,
                param_fraction: even,
                collectives: vec![
                    (Collective::AllToAll, payload),
                    (Collective::AllToAll, payload),
                ],
            });
        }
    }

    // Collect parameterized matmuls in topological order.
    let param_mms: Vec<&whale_graph::Op> = ops
        .iter()
        .filter_map(|&id| graph.op(id).ok())
        .filter(|op| {
            matches!(
                op.kind,
                OpKind::MatMul {
                    has_params: true,
                    ..
                }
            )
        })
        .collect();

    // Megatron MLP: consecutive up/down projections (first output dim feeds
    // the second's contraction dim) → one AllReduce of the block output.
    if param_mms.len() >= 2 {
        for pair in param_mms.windows(2) {
            let (up, down) = (pair[0], pair[1]);
            if let (
                OpKind::MatMul { n: up_n, .. },
                OpKind::MatMul {
                    k: down_k, n: _, ..
                },
            ) = (&up.kind, &down.kind)
            {
                if up_n == down_k {
                    let out_bytes = down.output_bytes();
                    return Ok(SplitPlan {
                        pattern: SplitPattern::MegatronMlp,
                        degree,
                        flops_fraction: even,
                        param_fraction: even,
                        collectives: vec![(Collective::AllReduce, out_bytes)],
                    });
                }
            }
        }
    }

    // Large FC: a single dominant parameterized matmul (possibly followed by
    // softmax/loss) → shards hold logit slices; AllGather reassembles them.
    if let Some(fc) = param_mms
        .iter()
        .max_by(|a, b| a.param_count().cmp(&b.param_count()))
    {
        let out_bytes = fc.output_bytes();
        return Ok(SplitPlan {
            pattern: SplitPattern::LargeFc,
            degree,
            flops_fraction: even,
            param_fraction: even,
            collectives: vec![(Collective::AllGather, out_bytes)],
        });
    }

    // Fallback: shard evenly and gather whatever leaves the TaskGraph.
    let boundary: u64 = graph.boundary_outputs(ops).iter().map(|(_, b)| b).sum();
    Ok(SplitPlan {
        pattern: SplitPattern::Generic,
        degree,
        flops_fraction: even,
        param_fraction: even,
        collectives: vec![(Collective::AllGather, boundary.max(1))],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::models::{self, MoeConfig};
    use whale_graph::GraphBuilder;

    #[test]
    fn moe_pattern_detected() {
        let g = models::m6_moe(MoeConfig::tiny(), 2).unwrap();
        let moe_ops: Vec<OpId> = g
            .ops()
            .iter()
            .filter(|o| o.name.contains("moe_ffn") || o.name.contains("gating"))
            .map(|o| o.id)
            .collect();
        let plan = match_split_pattern(&g, &moe_ops, 8).unwrap();
        assert_eq!(plan.pattern, SplitPattern::Moe);
        assert_eq!(plan.collectives.len(), 2, "dispatch + combine");
        assert!(plan
            .collectives
            .iter()
            .all(|(k, _)| *k == Collective::AllToAll));
        assert!((plan.param_fraction - 0.125).abs() < 1e-12);
    }

    #[test]
    fn large_fc_pattern_detected() {
        let g = models::imagenet_100k(8).unwrap();
        let fc_ops: Vec<OpId> = g
            .ops()
            .iter()
            .filter(|o| o.name.contains("fc_big") || o.name.contains("softmax"))
            .map(|o| o.id)
            .collect();
        let plan = match_split_pattern(&g, &fc_ops, 2).unwrap();
        assert_eq!(plan.pattern, SplitPattern::LargeFc);
        assert_eq!(plan.collectives[0].0, Collective::AllGather);
        // Logits are 8×100000 floats.
        assert_eq!(plan.collectives[0].1, 8 * 100_000 * 4);
    }

    #[test]
    fn megatron_mlp_pattern_detected() {
        let mut b = GraphBuilder::new("mlp");
        let x = b.input("x", &[8, 1024]).unwrap();
        let up = b.dense("up", x, 8, 1024, 4096).unwrap();
        b.dense("down", up, 8, 4096, 1024).unwrap();
        let g = b.finish();
        let ops: Vec<OpId> = g.ops().iter().skip(1).map(|o| o.id).collect();
        let plan = match_split_pattern(&g, &ops, 4).unwrap();
        assert_eq!(plan.pattern, SplitPattern::MegatronMlp);
        assert_eq!(
            plan.collectives,
            vec![(Collective::AllReduce, 8 * 1024 * 4)]
        );
    }

    #[test]
    fn generic_fallback_for_parameterless_ops() {
        let mut b = GraphBuilder::new("gen");
        let x = b.input("x", &[8, 64]).unwrap();
        let s = b.softmax("sm", x).unwrap();
        b.elementwise("ew", vec![s], 1).unwrap();
        let g = b.finish();
        let ops: Vec<OpId> = vec![OpId(1)];
        let plan = match_split_pattern(&g, &ops, 2).unwrap();
        assert_eq!(plan.pattern, SplitPattern::Generic);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let g = models::bert_base(1, 32).unwrap();
        assert!(match_split_pattern(&g, &[], 2).is_err());
        assert!(match_split_pattern(&g, &[OpId(0)], 0).is_err());
    }
}
