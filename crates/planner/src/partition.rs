//! Computation-balanced contiguous partitioning (§3.5).
//!
//! The paper's cost model `t = α · MF / GF` implies each device's FLOP share
//! `MF` should be proportional to its FLOPS `GF`. This module cuts a
//! topologically ordered op sequence into contiguous groups whose FLOP sums
//! track per-device weights — used for automatic pipeline-stage partitioning
//! (Example 4) and as the starting point of Algorithm 3.

use crate::error::{PlanError, Result};

/// Split `total` integer units proportionally to `weights`, preserving the
/// exact sum via largest-remainder rounding. Used by Algorithm 2 to split the
/// global batch by GPU FLOPS.
///
/// # Examples
///
/// ```
/// // §3.5's example: batch 32 over 9.3 and 12 TFLOPS gives 14 and 18.
/// let split = whale_planner::partition::proportional_split(32, &[9.3, 12.0]).unwrap();
/// assert_eq!(split, vec![14, 18]);
/// ```
pub fn proportional_split(total: usize, weights: &[f64]) -> Result<Vec<usize>> {
    if weights.is_empty() {
        return Err(PlanError::BadConfig("no weights".into()));
    }
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(PlanError::BadConfig(
            "weights must be non-negative and finite".into(),
        ));
    }
    let exact: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
    let mut out: Vec<usize> = exact.iter().map(|&e| e.floor() as usize).collect();
    let mut leftover = total - out.iter().sum::<usize>();
    // Hand out the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.total_cmp(&fa)
    });
    for &i in order.iter().cycle() {
        if leftover == 0 {
            break;
        }
        out[i] += 1;
        leftover -= 1;
    }
    Ok(out)
}

/// Cut `costs` (per-op FLOPs in topological order) into `weights.len()`
/// contiguous, non-empty groups whose cost sums approximate the weight
/// proportions. Returns the cut points: group `k` is `[cuts[k], cuts[k+1])`,
/// with `cuts[0] = 0` and `cuts.last() = costs.len()`.
pub fn balanced_cuts(costs: &[f64], weights: &[f64]) -> Result<Vec<usize>> {
    let n_groups = weights.len();
    if n_groups == 0 {
        return Err(PlanError::BadConfig("no groups".into()));
    }
    if costs.len() < n_groups {
        return Err(PlanError::BadConfig(format!(
            "{} ops cannot fill {} groups",
            costs.len(),
            n_groups
        )));
    }
    let total_cost: f64 = costs.iter().sum();
    let total_weight: f64 = weights.iter().sum();
    if total_weight <= 0.0 {
        return Err(PlanError::BadConfig("weights sum to zero".into()));
    }

    let mut cuts = Vec::with_capacity(n_groups + 1);
    cuts.push(0usize);
    let mut prefix = 0.0;
    let mut target_acc = 0.0;
    let mut op = 0usize;
    for (g, &w) in weights.iter().enumerate() {
        target_acc += total_cost * w / total_weight;
        let remaining_groups = n_groups - g - 1;
        // Greedily extend until crossing the cumulative target, choosing the
        // nearer side of the boundary op, while leaving at least one op per
        // remaining group.
        while op < costs.len() - remaining_groups {
            let next = prefix + costs[op];
            if next >= target_acc {
                // Keep the boundary op in this group only if that lands
                // closer to the target (and the group is non-empty either
                // way).
                let take = (next - target_acc) <= (target_acc - prefix) || op == cuts[g];
                if take {
                    prefix = next;
                    op += 1;
                }
                break;
            }
            prefix = next;
            op += 1;
        }
        // Guarantee progress: every group owns at least one op.
        if op == cuts[g] {
            prefix += costs[op];
            op += 1;
        }
        cuts.push(op);
    }
    *cuts.last_mut().expect("cuts is non-empty") = costs.len();
    // Re-validate monotonicity after forcing the final cut.
    if cuts.windows(2).any(|w| w[0] >= w[1]) {
        return Err(PlanError::BadConfig(
            "could not form non-empty contiguous groups".into(),
        ));
    }
    Ok(cuts)
}

/// Sum of `costs[cuts[k]..cuts[k+1]]` per group — the per-stage FLOPs of a
/// cut, for balance diagnostics.
pub fn group_costs(costs: &[f64], cuts: &[usize]) -> Vec<f64> {
    cuts.windows(2)
        .map(|w| costs[w[0]..w[1]].iter().sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_split_preserves_total() {
        let s = proportional_split(100, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(s.iter().sum::<usize>(), 100);
        assert_eq!(s, vec![34, 33, 33]);
    }

    #[test]
    fn paper_batch_split_example() {
        // §3.5: 9.3/(9.3+12)·32 ≈ 14, so P100 gets 14 and P40 gets 18.
        let s = proportional_split(32, &[9.3, 12.0]).unwrap();
        assert_eq!(s, vec![14, 18]);
    }

    #[test]
    fn hetero_16gpu_split() {
        // Fig. 17's cluster: 8 V100 (15.7) + 8 P100 (9.3), global batch 512.
        let weights: Vec<f64> = [15.7; 8].iter().chain([9.3; 8].iter()).copied().collect();
        let s = proportional_split(512, &weights).unwrap();
        assert_eq!(s.iter().sum::<usize>(), 512);
        assert!(s[0] > s[8], "V100 gets more than P100: {s:?}");
        let ratio = s[0] as f64 / s[8] as f64;
        assert!((ratio - 15.7 / 9.3).abs() < 0.15, "ratio = {ratio}");
    }

    #[test]
    fn degenerate_weights_rejected() {
        assert!(proportional_split(10, &[]).is_err());
        assert!(proportional_split(10, &[0.0, 0.0]).is_err());
        assert!(proportional_split(10, &[-1.0, 2.0]).is_err());
        assert!(proportional_split(10, &[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn balanced_cuts_even_weights() {
        let costs = vec![1.0; 12];
        let cuts = balanced_cuts(&costs, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(cuts, vec![0, 3, 6, 9, 12]);
        assert_eq!(group_costs(&costs, &cuts), vec![3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn balanced_cuts_follow_weights() {
        // Two devices at 1:3 FLOPS: the second stage should get ~3× the work.
        let costs = vec![1.0; 16];
        let cuts = balanced_cuts(&costs, &[1.0, 3.0]).unwrap();
        let g = group_costs(&costs, &cuts);
        assert_eq!(g[0], 4.0);
        assert_eq!(g[1], 12.0);
    }

    #[test]
    fn uneven_costs_still_balance() {
        // A heavy op in the middle; groups should straddle it sensibly.
        let costs = vec![1.0, 1.0, 1.0, 10.0, 1.0, 1.0, 1.0];
        let cuts = balanced_cuts(&costs, &[1.0, 1.0]).unwrap();
        let g = group_costs(&costs, &cuts);
        // Best contiguous split is 13/3 or 3/13; both sides non-empty.
        assert_eq!(g.iter().sum::<f64>(), 16.0);
        assert!(g[0] > 0.0 && g[1] > 0.0);
    }

    #[test]
    fn every_group_gets_at_least_one_op() {
        let costs = vec![100.0, 1.0, 1.0, 1.0];
        let cuts = balanced_cuts(&costs, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert_eq!(cuts.len(), 5);
        for w in cuts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn too_few_ops_rejected() {
        assert!(balanced_cuts(&[1.0, 1.0], &[1.0, 1.0, 1.0]).is_err());
    }
}
