//! Per-GPU memory ledger: itemized accounting behind
//! [`ExecutionPlan::memory_per_gpu`].
//!
//! The base plan charges each device its profiled model state (parameters,
//! gradients, optimizer state, activations — whatever
//! `TrainingConfig::memory_bytes` folded into `DeviceWork::mem_bytes`) plus
//! one fixed runtime overhead per GPU. Mixed-precision gradient collectives
//! (`CommConfig::grad_dtype` ≠ fp32) add state the profile does not know
//! about: an fp32 **master copy** of the weights the low-precision update
//! accumulates into, and the **loss-scaling** bookkeeping that keeps small
//! gradients from flushing to zero. Gradient compression
//! (`CommConfig::compress_ratio` < 1) adds an **error-feedback residual**
//! the same size as the gradient so dropped mass re-enters the next step.
//!
//! The ledger makes those costs visible to the planner — `memory_per_gpu`
//! (and therefore `memory_feasible` and the simulator's OOM audit) is the
//! ledger's per-GPU total, so a dtype choice that blows past device memory
//! fails feasibility like any other memory cost. This seeds the ROADMAP's
//! memory-ledger item: new components (activation checkpoints, ZeRO shards)
//! slot in as further [`LedgerComponent`] variants.

use std::collections::BTreeMap;

use whale_graph::profile::RUNTIME_OVERHEAD_BYTES;

use crate::commopt::GradDtype;
use crate::plan::ExecutionPlan;

/// Loss-scaling bookkeeping per GPU: the scale scalar, growth counter, and
/// per-bucket found-inf flags (tiny, but nonzero — the ledger itemizes it
/// so the render and tests can see precision is not free).
pub const LOSS_SCALING_STATE_BYTES: u64 = 4 << 10;

/// What a ledger entry pays for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LedgerComponent {
    /// Profiled model state from the cost model (params + grads + optimizer
    /// state + activations), net of the runtime overhead.
    ModelState,
    /// Fixed CUDA context + workspace, charged once per GPU.
    RuntimeOverhead,
    /// fp32 master copy of the trainable parameters, required when the
    /// gradient wire dtype is below fp32 and the training profile has not
    /// already provisioned one (i.e. AMP is off). ZeRO-sharded optimizers
    /// shard the master copy with the rest of the optimizer state.
    MasterWeights,
    /// Loss-scaling state for sub-fp32 gradient communication.
    LossScaling,
    /// Error-feedback residual for compressed collectives: the mass the
    /// compressor dropped this step, re-injected next step.
    CompressionResidual,
}

impl LedgerComponent {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            LedgerComponent::ModelState => "model-state",
            LedgerComponent::RuntimeOverhead => "runtime-overhead",
            LedgerComponent::MasterWeights => "master-weights",
            LedgerComponent::LossScaling => "loss-scaling",
            LedgerComponent::CompressionResidual => "compression-residual",
        }
    }
}

/// One itemized charge against one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Global GPU id.
    pub gpu: usize,
    /// What the bytes pay for.
    pub component: LedgerComponent,
    /// Bytes charged.
    pub bytes: u64,
}

/// The itemized per-GPU memory account of one plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryLedger {
    /// Every charge, in stage order then component order.
    pub entries: Vec<LedgerEntry>,
}

impl MemoryLedger {
    /// Total bytes per GPU (what [`ExecutionPlan::memory_per_gpu`] returns).
    pub fn per_gpu(&self) -> BTreeMap<usize, u64> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            *out.entry(e.gpu).or_insert(0) += e.bytes;
        }
        out
    }

    /// Total bytes charged to one component across all GPUs.
    pub fn component_total(&self, component: LedgerComponent) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.component == component)
            .map(|e| e.bytes)
            .sum()
    }
}

/// Build the ledger for a plan. Base entries reproduce the pre-ledger
/// accounting exactly (model state per stage-device net of overhead, one
/// overhead per GPU); precision entries appear only when the attached
/// grad-sync schedule communicates in a sub-fp32 dtype or compresses.
pub(crate) fn build_ledger(plan: &ExecutionPlan) -> MemoryLedger {
    let mut entries = Vec::new();
    let mut gpus_seen: Vec<usize> = Vec::new();
    let sched = plan.grad_sync_schedule.as_ref();
    let dtype = sched.map(|s| s.grad_dtype).unwrap_or(GradDtype::Fp32);
    let compressed = sched.is_some_and(|s| s.compress_ratio < 1.0);
    // AMP profiles already hold an fp32 master copy (see
    // `TrainingConfig::memory_bytes`); charging another would double-count.
    let needs_master = dtype != GradDtype::Fp32 && !plan.training.amp;
    let needs_scaling = dtype != GradDtype::Fp32;
    for stage in plan.stages.iter() {
        // ZeRO shards optimizer state — master weights included — across
        // the replica group; the error-feedback residual is per-rank.
        let master_shards = if plan.training.zero.shards_optimizer() {
            stage.dp_degree.max(1) as u64
        } else {
            1
        };
        for d in &stage.devices {
            entries.push(LedgerEntry {
                gpu: d.gpu,
                component: LedgerComponent::ModelState,
                bytes: d.mem_bytes.saturating_sub(RUNTIME_OVERHEAD_BYTES),
            });
            if needs_master && stage.param_bytes > 0 {
                entries.push(LedgerEntry {
                    gpu: d.gpu,
                    component: LedgerComponent::MasterWeights,
                    bytes: stage.param_bytes / master_shards,
                });
            }
            if compressed && stage.param_bytes > 0 {
                entries.push(LedgerEntry {
                    gpu: d.gpu,
                    component: LedgerComponent::CompressionResidual,
                    bytes: stage.param_bytes,
                });
            }
            if !gpus_seen.contains(&d.gpu) {
                gpus_seen.push(d.gpu);
            }
        }
    }
    for &gpu in &gpus_seen {
        entries.push(LedgerEntry {
            gpu,
            component: LedgerComponent::RuntimeOverhead,
            bytes: RUNTIME_OVERHEAD_BYTES,
        });
        if needs_scaling {
            entries.push(LedgerEntry {
                gpu,
                component: LedgerComponent::LossScaling,
                bytes: LOSS_SCALING_STATE_BYTES,
            });
        }
    }
    MemoryLedger { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commopt::CommConfig;
    use crate::planner::PlannerConfig;
    use whale_graph::models;
    use whale_ir::Annotator;

    fn plan_with(comm: CommConfig) -> ExecutionPlan {
        let g = models::bert_base(32, 64).unwrap();
        let ir = Annotator::new(g, 32)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = whale_hardware::Cluster::parse("8xV100+8xP100").unwrap();
        let cfg = PlannerConfig {
            comm,
            ..PlannerConfig::default()
        };
        crate::plan(&ir, &cluster, &cfg).unwrap()
    }

    #[test]
    fn fp32_ledger_reproduces_the_base_accounting() {
        let p = plan_with(CommConfig::fused());
        let ledger = p.memory_ledger();
        // No precision components at fp32.
        assert_eq!(ledger.component_total(LedgerComponent::MasterWeights), 0);
        assert_eq!(ledger.component_total(LedgerComponent::LossScaling), 0);
        assert_eq!(
            ledger.component_total(LedgerComponent::CompressionResidual),
            0
        );
        // The per-GPU totals ARE memory_per_gpu (same code path), and the
        // overhead is charged exactly once per GPU.
        assert_eq!(ledger.per_gpu(), p.memory_per_gpu());
        let overhead_gpus = ledger
            .entries
            .iter()
            .filter(|e| e.component == LedgerComponent::RuntimeOverhead)
            .count();
        assert_eq!(overhead_gpus, p.all_gpus().len());
    }

    #[test]
    fn sub_fp32_dtype_charges_master_weights_and_loss_scaling() {
        let fp32 = plan_with(CommConfig::fused());
        let bf16 = plan_with(CommConfig::fused().bf16());
        let l = bf16.memory_ledger();
        let master = l.component_total(LedgerComponent::MasterWeights);
        // Every replica of the single DP stage holds one fp32 master copy.
        let expected: u64 = bf16
            .stages
            .iter()
            .map(|s| s.param_bytes * s.devices.len() as u64)
            .sum();
        assert_eq!(master, expected);
        assert_eq!(
            l.component_total(LedgerComponent::LossScaling),
            LOSS_SCALING_STATE_BYTES * bf16.all_gpus().len() as u64
        );
        // And the totals grow accordingly.
        for (gpu, bytes) in bf16.memory_per_gpu() {
            assert!(bytes > fp32.memory_per_gpu()[&gpu]);
        }
    }

    #[test]
    fn compression_charges_an_error_feedback_residual() {
        let p = plan_with(CommConfig::fused().compress(0.5));
        let l = p.memory_ledger();
        assert!(l.component_total(LedgerComponent::CompressionResidual) > 0);
        // fp32 + compression: no master copy needed, residual only.
        assert_eq!(l.component_total(LedgerComponent::MasterWeights), 0);
    }

    #[test]
    fn amp_profiles_do_not_double_count_the_master_copy() {
        let g = models::bert_base(32, 64).unwrap();
        let ir = Annotator::new(g, 32)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let cluster = whale_hardware::Cluster::parse("8xV100").unwrap();
        let cfg = PlannerConfig {
            comm: CommConfig::fused().bf16(),
            training: whale_graph::TrainingConfig {
                amp: true,
                ..Default::default()
            },
            ..PlannerConfig::default()
        };
        let p = crate::plan(&ir, &cluster, &cfg).unwrap();
        let l = p.memory_ledger();
        assert_eq!(
            l.component_total(LedgerComponent::MasterWeights),
            0,
            "AMP already provisions the fp32 master copy"
        );
        assert!(l.component_total(LedgerComponent::LossScaling) > 0);
    }
}
