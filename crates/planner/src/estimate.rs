//! Analytic step-time estimation — the planner's internal cost model.
//!
//! Whale's planner reasons about candidate plans without executing them; this
//! module provides the same ability: a closed-form step-time estimate from
//! the plan's own cost metadata. It is intentionally simpler than the
//! discrete-event simulator (no task interleaving) but tracks it closely
//! enough to rank strategies, which lets `auto_parallel` prune candidates
//! before paying for a full simulation.

use serde::{Deserialize, Serialize};
use whale_hardware::{Cluster, CommModel};

use crate::error::Result;
use crate::plan::ExecutionPlan;

/// Closed-form estimate of one training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepEstimate {
    /// Estimated pipeline/compute span, seconds.
    pub compute: f64,
    /// Estimated pipeline bubble fraction (0 for single-stage plans).
    pub bubble: f64,
    /// Serialized gradient-sync time, seconds.
    pub sync: f64,
    /// Estimated step time (compute stretched by bubble; sync assumed
    /// overlapped like the simulator's default).
    pub step_time: f64,
}

/// Estimate `plan`'s step time on `cluster`.
///
/// Model: per-stage task time `tᵢ = max_device(flops/(GF·α·amp) +
/// traffic/BW) + collectives`; steady-state span `M·max(tᵢ)·3` (fw+bw)
/// stretched by the 1F1B bubble factor `(S−1)/(S−1+M)`; sync fully
/// overlapped (matching the simulator's default), except latency floors.
pub fn estimate_step(plan: &ExecutionPlan, cluster: &Cluster) -> Result<StepEstimate> {
    let comm = CommModel::new(cluster);
    let s = plan.stages.len().max(1);
    let m = plan.num_micro_batches.max(1);
    let amp = plan.training.amp;
    let bw_factor = if plan.training.recompute { 3.0 } else { 2.0 };

    let mut bottleneck: f64 = 0.0;
    let mut total_stage_time = 0.0;
    for stage in &plan.stages {
        let mut t: f64 = 0.0;
        for d in &stage.devices {
            let gpu = cluster.gpu(d.gpu)?;
            let boost = if amp { gpu.model.amp_speedup() } else { 1.0 };
            let flops_t = d.fw_flops_per_micro / (gpu.flops() * boost * plan.efficiency);
            let traffic = d.mem_traffic_per_micro * if amp { 0.5 } else { 1.0 };
            t = t.max(flops_t + traffic / gpu.model.memory_bandwidth());
        }
        let mut comm_t = 0.0;
        for c in &stage.collectives_per_micro {
            let n = c.group.len().max(1) as u64;
            let per_rank = match c.kind {
                whale_hardware::Collective::AllGather | whale_hardware::Collective::AllToAll => {
                    (c.bytes / n).max(1)
                }
                _ => c.bytes,
            };
            comm_t += comm.collective(c.kind, &c.group, per_rank)?;
        }
        let fw_bw = t * (1.0 + bw_factor) + comm_t * 2.0;
        bottleneck = bottleneck.max(fw_bw);
        total_stage_time += fw_bw;
    }

    // Pipelined stages overlap; co-located sequential TaskGraphs (same
    // device sets) serialize instead.
    let pipelined = s > 1 && plan.num_micro_batches > 1 && {
        let first = plan.stages[0].gpu_ids();
        plan.stages.iter().skip(1).any(|st| st.gpu_ids() != first)
    };
    let (compute, bubble) = if pipelined {
        let bubble = (s as f64 - 1.0) / (s as f64 - 1.0 + m as f64);
        let steady = m as f64 * bottleneck;
        (steady / (1.0 - bubble), bubble)
    } else {
        (m as f64 * total_stage_time, 0.0)
    };

    let mut sync = 0.0;
    for c in &plan.grad_syncs {
        sync += comm.collective(c.kind, &c.group, c.bytes)?;
    }
    // Default overlap hides sync behind backward; expose only what exceeds
    // the backward window (≈ compute·bw/(1+bw)).
    let bw_window = compute * bw_factor / (1.0 + bw_factor);
    let exposed = (sync - bw_window).max(0.0);
    Ok(StepEstimate {
        compute,
        bubble,
        sync,
        step_time: compute + exposed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan, PlannerConfig};
    use whale_graph::models;
    use whale_ir::Annotator;

    // The estimator lives below whale-sim in the dependency order, so the
    // agreement tests against the real simulator live in the workspace-level
    // `tests/estimator_agreement.rs`; here we check internal consistency.

    fn dp_plan(cluster: &Cluster, batch: usize) -> ExecutionPlan {
        let g = models::resnet50(batch).unwrap();
        let ir = Annotator::new(g, batch).replicate_all().unwrap().finish().unwrap();
        plan(&ir, cluster, &PlannerConfig::default()).unwrap()
    }

    #[test]
    fn estimate_scales_with_batch() {
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let small = estimate_step(&dp_plan(&cluster, 64), &cluster).unwrap();
        let big = estimate_step(&dp_plan(&cluster, 256), &cluster).unwrap();
        let ratio = big.step_time / small.step_time;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hetero_baseline_estimates_slower() {
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let g = models::resnet50(256).unwrap();
        let ir = Annotator::new(g, 256).replicate_all().unwrap().finish().unwrap();
        let aware = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let base = plan(
            &ir,
            &cluster,
            &PlannerConfig {
                hardware_aware: false,
                ..PlannerConfig::default()
            },
        )
        .unwrap();
        let ea = estimate_step(&aware, &cluster).unwrap();
        let eb = estimate_step(&base, &cluster).unwrap();
        assert!(eb.step_time > ea.step_time * 1.2);
    }

    #[test]
    fn pipeline_bubble_matches_closed_form() {
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let g = models::bert_base(64, 64).unwrap();
        let ir = Annotator::new(g, 64).auto_pipeline(12).unwrap().finish().unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let e = estimate_step(&p, &cluster).unwrap();
        assert!((e.bubble - 3.0 / 15.0).abs() < 1e-12);
        assert!(e.compute > 0.0);
    }
}
