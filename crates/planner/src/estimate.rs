//! Analytic step-time estimation — the planner's internal cost model.
//!
//! Whale's planner reasons about candidate plans without executing them; this
//! module provides the same ability: a closed-form step-time estimate from
//! the plan's own cost metadata. It is intentionally simpler than the
//! discrete-event simulator (no task interleaving) but tracks it closely
//! enough to rank strategies, which lets `auto_parallel` prune candidates
//! before paying for a full simulation.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use whale_fp::Fingerprint;
use whale_hardware::{Cluster, CommModel};

use crate::error::Result;
use crate::plan::{ExecutionPlan, PlannedStage};

/// FNV-1a. The cache keys are short vectors of numeric words produced by the
/// planner itself, so SipHash's collision-attack resistance buys nothing and
/// costs measurably in `auto_parallel`'s estimate phase.
#[derive(Clone)]
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;

/// Closed-form estimate of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEstimate {
    /// Estimated pipeline/compute span, seconds.
    pub compute: f64,
    /// Estimated pipeline bubble fraction (0 for single-stage plans).
    pub bubble: f64,
    /// Serialized gradient-sync time, seconds.
    pub sync: f64,
    /// Estimated step time (compute stretched by bubble; sync assumed
    /// overlapped like the simulator's default).
    pub step_time: f64,
}

/// Memoized sub-terms of [`estimate_step`], shared across the many plans of
/// one `auto_parallel` search.
///
/// Candidate plans frequently repeat whole stages (the same devices running
/// the same per-micro work) and gradient-sync collectives; the cache keys
/// each stage by its full cost signature — device set, per-device FLOP and
/// traffic terms, collectives, AMP/recompute/efficiency — so a hit returns
/// a value computed by the identical arithmetic on identical inputs.
/// Estimates are therefore bit-identical with or without the cache.
pub struct EstimateCache<'c> {
    cluster: &'c Cluster,
    comm: CommModel<'c>,
    stage_terms: FnvMap<Vec<u64>, f64>,
    sync_terms: FnvMap<Vec<u64>, f64>,
    steps: FnvMap<Fingerprint, StepEstimate>,
}

impl<'c> EstimateCache<'c> {
    /// Empty cache over `cluster` (also pre-builds the communication model
    /// once instead of once per estimate).
    pub fn new(cluster: &'c Cluster) -> EstimateCache<'c> {
        EstimateCache {
            cluster,
            comm: CommModel::new(cluster),
            stage_terms: FnvMap::default(),
            sync_terms: FnvMap::default(),
            steps: FnvMap::default(),
        }
    }

    /// Number of memoized sub-terms (diagnostics).
    pub fn len(&self) -> usize {
        self.stage_terms.len() + self.sync_terms.len() + self.steps.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The full cost signature of one stage, written into `key` (a scratch
/// buffer reused across stages — cache hits then cost no allocation); two
/// stages with equal keys have equal forward+backward terms.
fn stage_key_into(
    key: &mut Vec<u64>,
    stage: &PlannedStage,
    amp: bool,
    bw_factor: f64,
    efficiency: f64,
) {
    key.clear();
    key.push(amp as u64);
    key.push(bw_factor.to_bits());
    key.push(efficiency.to_bits());
    for d in &stage.devices {
        key.push(d.gpu as u64);
        key.push(d.fw_flops_per_micro.to_bits());
        key.push(d.mem_traffic_per_micro.to_bits());
    }
    key.push(u64::MAX); // separates devices from collectives
    for c in &stage.collectives_per_micro {
        key.push(c.kind as u64);
        key.push(c.bytes);
        key.push(c.group.len() as u64);
        key.extend(c.group.iter().map(|&g| g as u64));
    }
}

/// One stage's forward+backward span (compute roofline + collectives) —
/// the term [`EstimateCache`] memoizes.
fn stage_fw_bw(
    stage: &PlannedStage,
    cluster: &Cluster,
    comm: &CommModel<'_>,
    amp: bool,
    bw_factor: f64,
    efficiency: f64,
) -> Result<f64> {
    let mut t: f64 = 0.0;
    for d in &stage.devices {
        let gpu = cluster.gpu(d.gpu)?;
        let boost = if amp { gpu.model.amp_speedup() } else { 1.0 };
        let flops_t = d.fw_flops_per_micro / (gpu.flops() * boost * efficiency);
        let traffic = d.mem_traffic_per_micro * if amp { 0.5 } else { 1.0 };
        t = t.max(flops_t + traffic / gpu.model.memory_bandwidth());
    }
    let mut comm_t = 0.0;
    for c in &stage.collectives_per_micro {
        let n = c.group.len().max(1) as u64;
        let per_rank = match c.kind {
            whale_hardware::Collective::AllGather | whale_hardware::Collective::AllToAll => {
                (c.bytes / n).max(1)
            }
            _ => c.bytes,
        };
        comm_t += comm.collective(c.kind, &c.group, per_rank)?;
    }
    Ok(t * (1.0 + bw_factor) + comm_t * 2.0)
}

/// Estimate `plan`'s step time on `cluster`.
///
/// Model: per-stage task time `tᵢ = max_device(flops/(GF·α·amp) +
/// traffic/BW) + collectives`; steady-state span `M·max(tᵢ)·3` (fw+bw)
/// stretched by the 1F1B bubble factor `(S−1)/(S−1+M)`; sync fully
/// overlapped (matching the simulator's default), except latency floors.
pub fn estimate_step(plan: &ExecutionPlan, cluster: &Cluster) -> Result<StepEstimate> {
    estimate_step_cached(plan, &mut EstimateCache::new(cluster))
}

/// [`estimate_step_cached`] with a whole-step memo keyed by a content
/// fingerprint.
///
/// `key` must uniquely identify the `(plan, cluster)` pair — compose it from
/// the content fingerprints that determined the plan, e.g.
/// `whale_fp::compose` over `(ir.fingerprint(), cluster.fingerprint(),
/// config.fingerprint())` (the planner is deterministic, so that triple pins
/// the plan). Because the inputs are incremental fingerprints, a
/// `ClusterDelta` or single-layer edit re-hashes only the touched blocks and
/// every untouched candidate's estimate is a map lookup. A miss falls
/// through to [`estimate_step_cached`] and stores the result, so keyed
/// estimates are bit-identical to unkeyed ones.
pub fn estimate_step_keyed(
    plan: &ExecutionPlan,
    key: Fingerprint,
    cache: &mut EstimateCache<'_>,
) -> Result<StepEstimate> {
    if let Some(&e) = cache.steps.get(&key) {
        return Ok(e);
    }
    let e = estimate_step_cached(plan, cache)?;
    cache.steps.insert(key, e);
    Ok(e)
}

/// [`estimate_step`] against a shared [`EstimateCache`]; `auto_parallel`
/// reuses one cache across every candidate of a search.
pub fn estimate_step_cached(
    plan: &ExecutionPlan,
    cache: &mut EstimateCache<'_>,
) -> Result<StepEstimate> {
    let s = plan.stages.len().max(1);
    let m = plan.num_micro_batches.max(1);
    let amp = plan.training.amp;
    let bw_factor = if plan.training.recompute { 3.0 } else { 2.0 };

    let mut bottleneck: f64 = 0.0;
    let mut total_stage_time = 0.0;
    let mut key: Vec<u64> = Vec::new();
    for stage in plan.stages.iter() {
        stage_key_into(&mut key, stage, amp, bw_factor, plan.efficiency);
        let fw_bw = match cache.stage_terms.get(key.as_slice()) {
            Some(&t) => t,
            None => {
                let t = stage_fw_bw(
                    stage,
                    cache.cluster,
                    &cache.comm,
                    amp,
                    bw_factor,
                    plan.efficiency,
                )?;
                cache.stage_terms.insert(key.clone(), t);
                t
            }
        };
        bottleneck = bottleneck.max(fw_bw);
        total_stage_time += fw_bw;
    }

    // Pipelined stages overlap; co-located sequential TaskGraphs (same
    // device sets) serialize instead.
    let pipelined = s > 1 && plan.num_micro_batches > 1 && {
        let first = plan.stages[0].gpu_ids();
        plan.stages.iter().skip(1).any(|st| st.gpu_ids() != first)
    };
    let (compute, bubble) = if pipelined {
        let bubble = (s as f64 - 1.0) / (s as f64 - 1.0 + m as f64);
        let steady = m as f64 * bottleneck;
        (steady / (1.0 - bubble), bubble)
    } else {
        (m as f64 * total_stage_time, 0.0)
    };

    // Mixed-precision schedules shrink each sync's wire bytes and pay the
    // quantize/dequantize passes; fp32 plans (and plans with no schedule)
    // price the logical bytes exactly as before. The memo key carries both
    // byte counts so scaled and unscaled estimates never collide.
    let wire_sched = plan.grad_sync_schedule.as_ref().filter(|s| s.wire_scaled());
    let mut sync = 0.0;
    for (sync_index, c) in plan.grad_syncs.iter().enumerate() {
        let wire = wire_sched
            .and_then(|s| s.wire_bytes_of(sync_index))
            .unwrap_or(c.bytes);
        key.clear();
        key.push(c.kind as u64);
        key.push(c.bytes);
        key.push(wire);
        key.extend(c.group.iter().map(|&g| g as u64));
        let t = match cache.sync_terms.get(key.as_slice()) {
            Some(&t) => t,
            None => {
                let mut t = cache.comm.collective(c.kind, &c.group, wire)?;
                if wire_sched.is_some() && c.group.len() > 1 {
                    t += cache
                        .comm
                        .allreduce_selector(&c.group)?
                        .quantize_cost(c.bytes, wire);
                }
                cache.sync_terms.insert(key.clone(), t);
                t
            }
        };
        sync += t;
    }
    // Default overlap hides sync behind backward; expose only what exceeds
    // the backward window (≈ compute·bw/(1+bw)).
    let bw_window = compute * bw_factor / (1.0 + bw_factor);
    let exposed = (sync - bw_window).max(0.0);
    Ok(StepEstimate {
        compute,
        bubble,
        sync,
        step_time: compute + exposed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan, PlannerConfig};
    use whale_graph::models;
    use whale_ir::Annotator;

    // The estimator lives below whale-sim in the dependency order, so the
    // agreement tests against the real simulator live in the workspace-level
    // `tests/estimator_agreement.rs`; here we check internal consistency.

    fn dp_plan(cluster: &Cluster, batch: usize) -> ExecutionPlan {
        let g = models::resnet50(batch).unwrap();
        let ir = Annotator::new(g, batch)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        plan(&ir, cluster, &PlannerConfig::default()).unwrap()
    }

    #[test]
    fn estimate_scales_with_batch() {
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let small = estimate_step(&dp_plan(&cluster, 64), &cluster).unwrap();
        let big = estimate_step(&dp_plan(&cluster, 256), &cluster).unwrap();
        let ratio = big.step_time / small.step_time;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hetero_baseline_estimates_slower() {
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let g = models::resnet50(256).unwrap();
        let ir = Annotator::new(g, 256)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let aware = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let base = plan(
            &ir,
            &cluster,
            &PlannerConfig {
                hardware_aware: false,
                ..PlannerConfig::default()
            },
        )
        .unwrap();
        let ea = estimate_step(&aware, &cluster).unwrap();
        let eb = estimate_step(&base, &cluster).unwrap();
        assert!(eb.step_time > ea.step_time * 1.2);
    }

    #[test]
    fn cached_estimates_are_bit_identical() {
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let mut cache = EstimateCache::new(&cluster);
        for batch in [64usize, 256] {
            let p = dp_plan(&cluster, batch);
            let fresh = estimate_step(&p, &cluster).unwrap();
            let first = estimate_step_cached(&p, &mut cache).unwrap();
            let hit = estimate_step_cached(&p, &mut cache).unwrap();
            assert_eq!(fresh, first, "cold cache must match the plain path");
            assert_eq!(first, hit, "warm hit must return the stored terms");
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn keyed_estimates_are_bit_identical() {
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let mut cache = EstimateCache::new(&cluster);
        for (i, batch) in [64usize, 256].into_iter().enumerate() {
            let p = dp_plan(&cluster, batch);
            let key = whale_fp::Fingerprinter::new("test-step-key")
                .push_usize(i)
                .finish();
            let fresh = estimate_step(&p, &cluster).unwrap();
            let miss = estimate_step_keyed(&p, key, &mut cache).unwrap();
            let before = cache.len();
            let hit = estimate_step_keyed(&p, key, &mut cache).unwrap();
            assert_eq!(fresh, miss, "keyed miss must match the plain path");
            assert_eq!(miss, hit, "keyed hit must return the stored estimate");
            assert_eq!(cache.len(), before, "a hit must not grow the cache");
        }
    }

    #[test]
    fn pipeline_bubble_matches_closed_form() {
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let g = models::bert_base(64, 64).unwrap();
        let ir = Annotator::new(g, 64)
            .auto_pipeline(12)
            .unwrap()
            .finish()
            .unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let e = estimate_step(&p, &cluster).unwrap();
        assert!((e.bubble - 3.0 / 15.0).abs() < 1e-12);
        assert!(e.compute > 0.0);
    }
}
