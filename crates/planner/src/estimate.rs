//! Analytic step-time estimation — the planner's internal cost model.
//!
//! Whale's planner reasons about candidate plans without executing them; this
//! module provides the same ability: a closed-form step-time estimate from
//! the plan's own cost metadata. It is intentionally simpler than the
//! discrete-event simulator (no task interleaving) but tracks it closely
//! enough to rank strategies, which lets `auto_parallel` prune candidates
//! before paying for a full simulation.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use whale_fp::Fingerprint;
use whale_hardware::{Cluster, CommModel};

use crate::commopt::SyncMode;
use crate::error::Result;
use crate::plan::{ExecutionPlan, PlannedStage};

/// FNV-1a. The cache keys are short vectors of numeric words produced by the
/// planner itself, so SipHash's collision-attack resistance buys nothing and
/// costs measurably in `auto_parallel`'s estimate phase.
#[derive(Clone)]
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;

/// Closed-form estimate of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEstimate {
    /// Estimated pipeline/compute span, seconds.
    pub compute: f64,
    /// Estimated pipeline bubble fraction (0 for single-stage plans).
    pub bubble: f64,
    /// Serialized gradient-sync time, seconds.
    pub sync: f64,
    /// Estimated step time (compute stretched by bubble; sync assumed
    /// overlapped like the simulator's default).
    pub step_time: f64,
}

/// Memoized sub-terms of [`estimate_step`], shared across the many plans of
/// one `auto_parallel` search.
///
/// Candidate plans frequently repeat whole stages (the same devices running
/// the same per-micro work) and gradient-sync collectives; the cache keys
/// each stage by its full cost signature — device set, per-device FLOP and
/// traffic terms, collectives, AMP/recompute/efficiency — so a hit returns
/// a value computed by the identical arithmetic on identical inputs.
/// Estimates are therefore bit-identical with or without the cache.
pub struct EstimateCache<'c> {
    cluster: &'c Cluster,
    comm: CommModel<'c>,
    stage_terms: FnvMap<Vec<u64>, (f64, f64)>,
    sync_terms: FnvMap<Vec<u64>, f64>,
    /// [`estimate_step_lower_bound`]'s fully-priced sync durations
    /// (collective × ZeRO factor + quantize passes). Separate from
    /// `sync_terms` because the stored quantity differs; a pipeline
    /// structure's grad syncs are identical across its whole micro/schedule
    /// sweep, so the search hits this map on every leaf after the first.
    sync_durs: FnvMap<Vec<u64>, f64>,
    steps: FnvMap<Fingerprint, StepEstimate>,
    bounds: FnvMap<Fingerprint, f64>,
}

impl<'c> EstimateCache<'c> {
    /// Empty cache over `cluster` (also pre-builds the communication model
    /// once instead of once per estimate).
    pub fn new(cluster: &'c Cluster) -> EstimateCache<'c> {
        EstimateCache {
            cluster,
            comm: CommModel::new(cluster),
            stage_terms: FnvMap::default(),
            sync_terms: FnvMap::default(),
            sync_durs: FnvMap::default(),
            steps: FnvMap::default(),
            bounds: FnvMap::default(),
        }
    }

    /// The cluster this cache prices against.
    pub fn cluster(&self) -> &'c Cluster {
        self.cluster
    }

    /// Number of memoized sub-terms (diagnostics).
    pub fn len(&self) -> usize {
        self.stage_terms.len()
            + self.sync_terms.len()
            + self.sync_durs.len()
            + self.steps.len()
            + self.bounds.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The full cost signature of one stage, written into `key` (a scratch
/// buffer reused across stages — cache hits then cost no allocation); two
/// stages with equal keys have equal forward+backward terms.
fn stage_key_into(
    key: &mut Vec<u64>,
    stage: &PlannedStage,
    amp: bool,
    bw_factor: f64,
    efficiency: f64,
) {
    key.clear();
    key.push(amp as u64);
    key.push(bw_factor.to_bits());
    key.push(efficiency.to_bits());
    for d in &stage.devices {
        key.push(d.gpu as u64);
        key.push(d.fw_flops_per_micro.to_bits());
        key.push(d.mem_traffic_per_micro.to_bits());
    }
    key.push(u64::MAX); // separates devices from collectives
    for c in &stage.collectives_per_micro {
        key.push(c.kind as u64);
        key.push(c.bytes);
        key.push(c.group.len() as u64);
        key.extend(c.group.iter().map(|&g| g as u64));
    }
}

/// One stage's per-micro `(forward+backward, forward-only)` span (compute
/// roofline + collectives) — the pair [`EstimateCache`] memoizes. The
/// engine prices a forward task as `roofline + collectives` and a backward
/// task as `κ·roofline + collectives`, so the pair is exactly
/// `((1+κ)·t + 2·c, t + c)`.
fn stage_fw_bw(
    stage: &PlannedStage,
    cluster: &Cluster,
    comm: &CommModel<'_>,
    amp: bool,
    bw_factor: f64,
    efficiency: f64,
) -> Result<(f64, f64)> {
    let mut t: f64 = 0.0;
    for d in &stage.devices {
        let gpu = cluster.gpu(d.gpu)?;
        let boost = if amp { gpu.model.amp_speedup() } else { 1.0 };
        let flops_t = d.fw_flops_per_micro / (gpu.flops() * boost * efficiency);
        let traffic = d.mem_traffic_per_micro * if amp { 0.5 } else { 1.0 };
        t = t.max(flops_t + traffic / gpu.model.memory_bandwidth());
    }
    let mut comm_t = 0.0;
    for c in &stage.collectives_per_micro {
        let n = c.group.len().max(1) as u64;
        let per_rank = match c.kind {
            whale_hardware::Collective::AllGather | whale_hardware::Collective::AllToAll => {
                (c.bytes / n).max(1)
            }
            _ => c.bytes,
        };
        comm_t += comm.collective(c.kind, &c.group, per_rank)?;
    }
    Ok((t * (1.0 + bw_factor) + comm_t * 2.0, t + comm_t))
}

/// Estimate `plan`'s step time on `cluster`.
///
/// Model: per-stage task time `tᵢ = max_device(flops/(GF·α·amp) +
/// traffic/BW) + collectives`; steady-state span `M·max(tᵢ)·3` (fw+bw)
/// stretched by the 1F1B bubble factor `(S−1)/(S−1+M)`; sync fully
/// overlapped (matching the simulator's default), except latency floors.
pub fn estimate_step(plan: &ExecutionPlan, cluster: &Cluster) -> Result<StepEstimate> {
    estimate_step_cached(plan, &mut EstimateCache::new(cluster))
}

/// [`estimate_step_cached`] with a whole-step memo keyed by a content
/// fingerprint.
///
/// `key` must uniquely identify the `(plan, cluster)` pair — compose it from
/// the content fingerprints that determined the plan, e.g.
/// `whale_fp::compose` over `(ir.fingerprint(), cluster.fingerprint(),
/// config.fingerprint())` (the planner is deterministic, so that triple pins
/// the plan). Because the inputs are incremental fingerprints, a
/// `ClusterDelta` or single-layer edit re-hashes only the touched blocks and
/// every untouched candidate's estimate is a map lookup. A miss falls
/// through to [`estimate_step_cached`] and stores the result, so keyed
/// estimates are bit-identical to unkeyed ones.
pub fn estimate_step_keyed(
    plan: &ExecutionPlan,
    key: Fingerprint,
    cache: &mut EstimateCache<'_>,
) -> Result<StepEstimate> {
    if let Some(&e) = cache.steps.get(&key) {
        return Ok(e);
    }
    let e = estimate_step_cached(plan, cache)?;
    cache.steps.insert(key, e);
    Ok(e)
}

/// [`estimate_step`] against a shared [`EstimateCache`]; `auto_parallel`
/// reuses one cache across every candidate of a search.
pub fn estimate_step_cached(
    plan: &ExecutionPlan,
    cache: &mut EstimateCache<'_>,
) -> Result<StepEstimate> {
    let s = plan.stages.len().max(1);
    let m = plan.num_micro_batches.max(1);
    let amp = plan.training.amp;
    let bw_factor = if plan.training.recompute { 3.0 } else { 2.0 };

    let mut bottleneck: f64 = 0.0;
    let mut total_stage_time = 0.0;
    let mut key: Vec<u64> = Vec::new();
    for stage in plan.stages.iter() {
        stage_key_into(&mut key, stage, amp, bw_factor, plan.efficiency);
        let (fw_bw, _) = match cache.stage_terms.get(key.as_slice()) {
            Some(&t) => t,
            None => {
                let t = stage_fw_bw(
                    stage,
                    cache.cluster,
                    &cache.comm,
                    amp,
                    bw_factor,
                    plan.efficiency,
                )?;
                cache.stage_terms.insert(key.clone(), t);
                t
            }
        };
        bottleneck = bottleneck.max(fw_bw);
        total_stage_time += fw_bw;
    }

    // Pipelined stages overlap; co-located sequential TaskGraphs (same
    // device sets) serialize instead.
    let pipelined = s > 1 && plan.num_micro_batches > 1 && {
        let first = plan.stages[0].gpu_ids();
        plan.stages.iter().skip(1).any(|st| st.gpu_ids() != first)
    };
    let (compute, bubble) = if pipelined {
        let bubble = (s as f64 - 1.0) / (s as f64 - 1.0 + m as f64);
        let steady = m as f64 * bottleneck;
        (steady / (1.0 - bubble), bubble)
    } else {
        (m as f64 * total_stage_time, 0.0)
    };

    // Mixed-precision schedules shrink each sync's wire bytes and pay the
    // quantize/dequantize passes; fp32 plans (and plans with no schedule)
    // price the logical bytes exactly as before. The memo key carries both
    // byte counts so scaled and unscaled estimates never collide.
    let wire_sched = plan.grad_sync_schedule.as_ref().filter(|s| s.wire_scaled());
    let mut sync = 0.0;
    for (sync_index, c) in plan.grad_syncs.iter().enumerate() {
        let wire = wire_sched
            .and_then(|s| s.wire_bytes_of(sync_index))
            .unwrap_or(c.bytes);
        key.clear();
        key.push(c.kind as u64);
        key.push(c.bytes);
        key.push(wire);
        key.extend(c.group.iter().map(|&g| g as u64));
        let t = match cache.sync_terms.get(key.as_slice()) {
            Some(&t) => t,
            None => {
                let mut t = cache.comm.collective(c.kind, &c.group, wire)?;
                if wire_sched.is_some() && c.group.len() > 1 {
                    t += cache
                        .comm
                        .allreduce_selector(&c.group)?
                        .quantize_cost(c.bytes, wire);
                }
                cache.sync_terms.insert(key.clone(), t);
                t
            }
        };
        sync += t;
    }
    // Default overlap hides sync behind backward; expose only what exceeds
    // the backward window (≈ compute·bw/(1+bw)).
    let bw_window = compute * bw_factor / (1.0 + bw_factor);
    let exposed = (sync - bw_window).max(0.0);
    Ok(StepEstimate {
        compute,
        bubble,
        sync,
        step_time: compute + exposed,
    })
}

/// Structural description of one auto-search node *before* planning —
/// everything the admissible pre-plan lower bound needs, with no plan in
/// hand. The search driver prices thousands of these per search, so the
/// bound is closed-form over cluster-wide aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructuralBound {
    /// Forward FLOPs one sample costs through the whole model.
    pub fw_flops_per_sample: f64,
    /// Samples per training step.
    pub global_batch: usize,
    /// Plan-level replica groups (outer DP degree; 1 = none).
    pub replicas: usize,
    /// Pipeline depth inside one replica group (1 = no pipeline).
    pub depth: usize,
    /// Micro batches per step.
    pub num_micro: usize,
    /// Devices sharing one stage's compute inside a group (1 for
    /// one-GPU-per-stage pipelines; the group size for split/replicated
    /// single-stage structures).
    pub stage_width: usize,
    /// AMP on (fast kernels run at `flops × amp_speedup`).
    pub amp: bool,
    /// Activation recomputation on (backward replays forward: the
    /// backward/forward cost ratio becomes 3 instead of 2).
    pub recompute: bool,
    /// Compute efficiency `α` of the cost model.
    pub efficiency: f64,
}

impl StructuralBound {
    /// Content fingerprint (keys the bound memo in [`EstimateCache`]; the
    /// caller composes it with the cluster fingerprint).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = whale_fp::Fingerprinter::new("structural-bound");
        fp.push_f64(self.fw_flops_per_sample)
            .push_usize(self.global_batch)
            .push_usize(self.replicas)
            .push_usize(self.depth)
            .push_usize(self.num_micro)
            .push_usize(self.stage_width)
            .push_bool(self.amp)
            .push_bool(self.recompute)
            .push_f64(self.efficiency);
        fp.finish()
    }
}

/// Admissible pre-plan lower bound on the simulated step time of any plan
/// with the given structure: the true (engine-simulated) step time of every
/// such plan is ≥ the returned value.
///
/// Two rigorous terms, both ignoring communication, pipeline bubbles, and
/// load imbalance (each only adds time in the engine):
///
/// * **work conservation** — total forward+backward FLOPs cannot finish
///   faster than the whole cluster running flat out:
///   `(1+κ)·F / Σ_g c_g` with `κ` the backward factor (2, or 3 under
///   recomputation) and `c_g = flops_g · α · amp_g` the effective rate;
/// * **pipeline fill** — some replica group carries ≥ `B/r` samples. For
///   any contiguous partition of its chain into `d` stages with per-micro
///   stage times `f_j` (forward + backward), data dependencies force the
///   step ≥ `Σ_{s<j} f_s + m·f_j` for every `j`: stage `j` cannot start
///   before the first micro batch ramps through its predecessors, must
///   serialize its own `m` tasks, and the last micro batch still drains
///   back through `s < j` (which contributes the `bw_s` half of the ramp
///   term). Minimizing the max of those `d` constraints over all ways to
///   split the chain (`Σ f_j = C`, the per-micro whole-chain time at the
///   globally fastest rate) gives the closed form
///   `C / (1 − (1 − 1/m)^d)`, which every concrete partition — and hence
///   every plan with this structure — can only exceed. It degenerates to
///   `C` at `m = 1`, `m·C` at `d = 1`, and `C·m/d` as `m → ∞`, so it
///   dominates both the naive critical-chain and average-stage bounds.
///
/// **Heterogeneity refinement.** For one-GPU-per-stage pipelines that tile
/// the whole cluster (`replicas · depth = |GPUs|`), the planner's replica
/// groups are contiguous device ranges, so the *set* of per-stage rates in
/// each group is known before any plan exists. Redoing the waterfilling
/// with per-stage rates `c_j`: equalizing the `d` constraints gives
/// `f_j = (T/m)·q^{j−1}` with `q = 1 − 1/m`, and the work constraint
/// `Σ f_j · c_j = W_group / m` closes to
///
/// ```text
/// T = W_group / Σ_j c_j · q^{j−1}
/// ```
///
/// Sorting the rates descending maximizes the denominator over every
/// possible stage→GPU order, so the value stays admissible no matter how
/// the planner assigns stages; some group carries ≥ `B/r` samples
/// (pigeonhole), priced against the largest group denominator. With
/// uniform rates the formula reduces exactly to the closed form above, and
/// on mixed clusters its large-`m` plateau is the *group's* aggregate rate
/// rather than `d` copies of the fastest — the slack that used to let
/// every high-micro leaf through the pre-plan gate on V100+P100 clusters.
pub fn structural_lower_bound(b: &StructuralBound, cluster: &Cluster) -> f64 {
    let kappa = if b.recompute { 3.0 } else { 2.0 };
    let work = (1.0 + kappa) * b.fw_flops_per_sample * b.global_batch as f64;
    let mut total_rate = 0.0_f64;
    let mut max_rate = 0.0_f64;
    for g in cluster.gpus() {
        let boost = if b.amp { g.model.amp_speedup() } else { 1.0 };
        let rate = g.flops() * boost * b.efficiency;
        total_rate += rate;
        max_rate = max_rate.max(rate);
    }
    if total_rate <= 0.0 || max_rate <= 0.0 {
        return 0.0;
    }
    let conservation = work / total_rate;
    let m = b.num_micro.max(1) as f64;
    let d = b.depth.max(1) as f64;
    let replicas = b.replicas.max(1);
    let group_work = work / replicas as f64;
    let fill = if b.depth > 1 && b.stage_width == 1 && replicas * b.depth == cluster.num_gpus() {
        let q = 1.0 - 1.0 / m;
        let mut denom = 0.0_f64;
        for g in 0..replicas {
            let mut rates: Vec<f64> = cluster.gpus()[g * b.depth..(g + 1) * b.depth]
                .iter()
                .map(|gpu| {
                    let boost = if b.amp { gpu.model.amp_speedup() } else { 1.0 };
                    gpu.flops() * boost * b.efficiency
                })
                .collect();
            rates.sort_by(|x, y| y.total_cmp(x));
            let (mut dsum, mut wgt) = (0.0_f64, 1.0_f64);
            for c in rates {
                dsum += c * wgt;
                wgt *= q;
            }
            denom = denom.max(dsum);
        }
        if denom > 0.0 {
            group_work / denom
        } else {
            0.0
        }
    } else {
        let chain = group_work / (m * b.stage_width.max(1) as f64 * max_rate);
        chain / (1.0 - (1.0 - 1.0 / m).powf(d))
    };
    conservation.max(fill)
}

/// [`structural_lower_bound`] memoized in the cache by the bound's content
/// fingerprint (the cache is cluster-scoped, so the key needs no cluster
/// component). Bit-identical to the unmemoized call.
pub fn structural_lower_bound_keyed(b: &StructuralBound, cache: &mut EstimateCache<'_>) -> f64 {
    let key = b.fingerprint();
    if let Some(&t) = cache.bounds.get(&key) {
        return t;
    }
    let t = structural_lower_bound(b, cache.cluster);
    cache.bounds.insert(key, t);
    t
}

/// Admissible post-plan lower bound on `plan`'s simulated step time.
///
/// Uses the engine's own per-micro task price — per-device FLOPs at
/// effective rate plus memory traffic at device bandwidth (backward = κ×
/// forward) plus the stage's per-micro collectives, charged once in each
/// direction, through the identical [`CommModel`] — and the engine's
/// inter-stage transfer lags, but drops everything else additive:
/// scheduling gaps and any sync serialization beyond the release-time term
/// below.
///
/// **Compute term.** For every stage `j`, data dependencies alone force
///
/// ```text
/// step ≥ Σ_{s<j} (fw_s + bw_s + 2·xfer_s)  +  m · (fw_j + bw_j)
///        └───── ramp in + drain out ──────┘    └─ j's serial tasks ─┘
/// ```
///
/// (micro 0's forwards must climb through stages `0..j`, paying the
/// activation transfer at each boundary, before `j` starts; stage `j` then
/// serializes its `m` forward+backward tasks; and the last micro's
/// backwards must descend through `j-1..0`, paying the gradient transfer at
/// each boundary); the bound is the max over `j`, which dominates both the
/// classic `m · max_s t_s` and `Σ_s t_s` terms.
///
/// **Sync term (unbucketed plans).** In the engine's legacy path every
/// gradient AllReduce serializes on one global NIC accumulator, and stage
/// `j`'s sync cannot *start* before a release time `R_j`:
///
/// * `m ≥ 2`: gradients accumulate across micro batches, so readiness is
///   stage `j`'s last backward — no earlier than
///   `R_j = Σ_{s<j} (fw_s + xfer_s) + m·(fw_j + bw_j)` (micro 0's forward
///   ramp, then `j`'s own 2m serialized tasks);
/// * `m = 1`: Horovod-style overlap lets the sync start up to one backward
///   span early, leaving `R_j = Σ_{s<j} (fw_s + xfer_s) + fw_j`;
/// * stage-less syncs release at the full compute makespan, so `R` is the
///   compute term itself.
///
/// A single serial resource with release times obeys, for every subset `S`
/// of syncs, `finish ≥ min_{j∈S} R_j + Σ_{j∈S} dur_j`; the maximizing `S`
/// is a suffix of the syncs sorted by descending `R`, so the bound sweeps
/// those suffixes. The step is then
/// `max(compute, release-bound) + optimizer`, since the engine computes
/// `step = max(compute makespan, last sync finish) + optimizer` and the
/// durations are priced identically (ZeRO comm factor, wire scaling,
/// quantize passes). Bucketed schedules overlap across disjoint node
/// groups, so no admissible serialization term exists and they contribute
/// nothing. (Admissibility assumes `sync_overlap ∈ [0, 1]`, the documented
/// range of the simulator's knob.)
///
/// Because the engine prices each task exactly this way and then only ever
/// *adds* time, the returned value never exceeds the simulated step time —
/// the admissibility the branch-and-bound search relies on (see
/// `tests/search_determinism.rs` and `tests/estimator_agreement.rs`).
pub fn estimate_step_lower_bound(
    plan: &ExecutionPlan,
    cache: &mut EstimateCache<'_>,
) -> Result<f64> {
    let m = plan.num_micro_batches.max(1) as f64;
    let amp = plan.training.amp;
    let bw_factor = if plan.training.recompute { 3.0 } else { 2.0 };
    let mut chain = 0.0_f64;
    let mut fw_ramp = 0.0_f64;
    let mut bottleneck = 0.0_f64;
    // Release-time lower bound per stage: earliest instant its gradient
    // sync could possibly start in the engine.
    let mut releases: Vec<f64> = Vec::with_capacity(plan.stages.len());
    let mut key: Vec<u64> = Vec::new();
    for (s, stage) in plan.stages.iter().enumerate() {
        // Shares [`estimate_step_cached`]'s memoized term (same key), so a
        // bound computed before an estimate makes the estimate free and
        // vice versa.
        stage_key_into(&mut key, stage, amp, bw_factor, plan.efficiency);
        let (fw_bw, fw) = match cache.stage_terms.get(key.as_slice()) {
            Some(&t) => t,
            None => {
                let t = stage_fw_bw(
                    stage,
                    cache.cluster,
                    &cache.comm,
                    amp,
                    bw_factor,
                    plan.efficiency,
                )?;
                cache.stage_terms.insert(key.clone(), t);
                t
            }
        };
        bottleneck = bottleneck.max(chain + m * fw_bw);
        releases.push(fw_ramp + if m >= 2.0 { m * fw_bw } else { fw });
        chain += fw_bw;
        fw_ramp += fw;
        // Boundary to the next stage: the engine lags cross-stage edges by
        // the activation transfer forward and the gradient transfer back
        // (co-located stages hand over in device memory, lag 0).
        if let Some(next) = plan.stages.get(s + 1) {
            let bytes = stage.send_bytes_per_micro;
            if bytes > 0 {
                let from = stage.gpu_ids();
                let to = next.gpu_ids();
                if from != to {
                    let a = cache.cluster.gpu(from[0])?;
                    let b = cache.cluster.gpu(to[0])?;
                    let xfer = cache.cluster.interconnect.p2p_time(a, b, bytes);
                    chain += 2.0 * xfer;
                    fw_ramp += xfer;
                }
            }
        }
    }

    // Unbucketed gradient syncs serialize on one NIC accumulator in the
    // engine; collect each sync's (release bound, duration) — priced
    // identically (ZeRO comm factor, wire scaling, quantize passes) — and
    // take the best suffix bound over descending releases. Bucketed
    // schedules overlap across disjoint node groups; no admissible
    // serialization term there, so they contribute nothing.
    let bucketed = plan
        .grad_sync_schedule
        .as_ref()
        .is_some_and(|s| s.mode == SyncMode::Bucketed);
    let mut sync_finish = 0.0_f64;
    if !bucketed {
        let zero_factor = plan.training.zero.comm_factor();
        let wire_sched = plan.grad_sync_schedule.as_ref().filter(|s| s.wire_scaled());
        let mut syncs: Vec<(f64, f64)> = Vec::with_capacity(plan.grad_syncs.len());
        for (sync_index, c) in plan.grad_syncs.iter().enumerate() {
            let wire = wire_sched
                .and_then(|s| s.wire_bytes_of(sync_index))
                .filter(|_| c.group.len() > 1);
            key.clear();
            key.push(c.kind as u64);
            key.push(c.bytes);
            key.push(wire.unwrap_or(c.bytes));
            key.push(zero_factor.to_bits());
            key.extend(c.group.iter().map(|&g| g as u64));
            let dur = match cache.sync_durs.get(key.as_slice()) {
                Some(&d) => d,
                None => {
                    let (wire, quant) = match wire {
                        Some(wire) => {
                            let mut membw = f64::INFINITY;
                            for &g in &c.group {
                                membw = membw.min(cache.cluster.gpu(g)?.model.memory_bandwidth());
                            }
                            (
                                wire,
                                whale_hardware::quantize_dequantize_cost(c.bytes, wire, membw),
                            )
                        }
                        None => (c.bytes, 0.0),
                    };
                    let d = cache.comm.collective(c.kind, &c.group, wire)? * zero_factor + quant;
                    cache.sync_durs.insert(key.clone(), d);
                    d
                }
            };
            let release = c
                .stage
                .filter(|&s| s < plan.stages.len())
                .map(|s| releases[s])
                .unwrap_or(bottleneck);
            syncs.push((release, dur));
        }
        syncs.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut cum = 0.0;
        for (release, dur) in syncs {
            cum += dur;
            sync_finish = sync_finish.max(release + cum);
        }
    }

    // The optimizer update is charged unconditionally after compute + sync,
    // with the engine's exact price (bandwidth-bound read-modify-write, or
    // the ZeRO-Offload PCIe round trip).
    let mut optimizer_time: f64 = 0.0;
    for stage in plan.stages.iter() {
        let shards = if plan.training.zero.shards_optimizer() || plan.training.offload {
            stage.dp_degree.max(1) as f64
        } else {
            1.0
        };
        for d in &stage.devices {
            let gpu = cache.cluster.gpu(d.gpu)?;
            let local_params = stage.param_bytes as f64;
            let t = if plan.training.offload {
                let grad_bytes = local_params / 4.0 * if plan.training.amp { 2.0 } else { 4.0 };
                let back_bytes = local_params / 4.0 * 2.0;
                (grad_bytes + back_bytes) / (shards * cache.cluster.interconnect.pcie_bw)
            } else {
                3.0 * local_params / (shards * gpu.model.memory_bandwidth())
            };
            optimizer_time = optimizer_time.max(t);
        }
    }

    Ok(bottleneck.max(sync_finish) + optimizer_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan, PlannerConfig};
    use whale_graph::models;
    use whale_ir::Annotator;

    // The estimator lives below whale-sim in the dependency order, so the
    // agreement tests against the real simulator live in the workspace-level
    // `tests/estimator_agreement.rs`; here we check internal consistency.

    fn dp_plan(cluster: &Cluster, batch: usize) -> ExecutionPlan {
        let g = models::resnet50(batch).unwrap();
        let ir = Annotator::new(g, batch)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        plan(&ir, cluster, &PlannerConfig::default()).unwrap()
    }

    #[test]
    fn estimate_scales_with_batch() {
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let small = estimate_step(&dp_plan(&cluster, 64), &cluster).unwrap();
        let big = estimate_step(&dp_plan(&cluster, 256), &cluster).unwrap();
        let ratio = big.step_time / small.step_time;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn hetero_baseline_estimates_slower() {
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let g = models::resnet50(256).unwrap();
        let ir = Annotator::new(g, 256)
            .replicate_all()
            .unwrap()
            .finish()
            .unwrap();
        let aware = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let base = plan(
            &ir,
            &cluster,
            &PlannerConfig {
                hardware_aware: false,
                ..PlannerConfig::default()
            },
        )
        .unwrap();
        let ea = estimate_step(&aware, &cluster).unwrap();
        let eb = estimate_step(&base, &cluster).unwrap();
        assert!(eb.step_time > ea.step_time * 1.2);
    }

    #[test]
    fn cached_estimates_are_bit_identical() {
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let mut cache = EstimateCache::new(&cluster);
        for batch in [64usize, 256] {
            let p = dp_plan(&cluster, batch);
            let fresh = estimate_step(&p, &cluster).unwrap();
            let first = estimate_step_cached(&p, &mut cache).unwrap();
            let hit = estimate_step_cached(&p, &mut cache).unwrap();
            assert_eq!(fresh, first, "cold cache must match the plain path");
            assert_eq!(first, hit, "warm hit must return the stored terms");
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn keyed_estimates_are_bit_identical() {
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let mut cache = EstimateCache::new(&cluster);
        for (i, batch) in [64usize, 256].into_iter().enumerate() {
            let p = dp_plan(&cluster, batch);
            let key = whale_fp::Fingerprinter::new("test-step-key")
                .push_usize(i)
                .finish();
            let fresh = estimate_step(&p, &cluster).unwrap();
            let miss = estimate_step_keyed(&p, key, &mut cache).unwrap();
            let before = cache.len();
            let hit = estimate_step_keyed(&p, key, &mut cache).unwrap();
            assert_eq!(fresh, miss, "keyed miss must match the plain path");
            assert_eq!(miss, hit, "keyed hit must return the stored estimate");
            assert_eq!(cache.len(), before, "a hit must not grow the cache");
        }
    }

    #[test]
    fn lower_bounds_are_ordered() {
        // Pre-plan bound ≤ post-plan bound: the structural bound knows only
        // cluster aggregates, the post-plan bound prices the real stages
        // (and additionally charges collectives and transfer lags). The
        // post-plan bound's admissibility against the *simulator* is the
        // workspace-level `tests/estimator_agreement.rs`.
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let mut cache = EstimateCache::new(&cluster);
        let g = models::bert_base(64, 64).unwrap();
        let fw_per_sample = whale_graph::graph_stats(&g).forward_flops / 64.0;
        let ir = Annotator::new(g, 64)
            .auto_pipeline(8)
            .unwrap()
            .finish()
            .unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let post = estimate_step_lower_bound(&p, &mut cache).unwrap();
        assert!(post > 0.0, "post {post}");
        let b = StructuralBound {
            fw_flops_per_sample: fw_per_sample,
            global_batch: 64,
            replicas: 1,
            depth: p.stages.len(),
            num_micro: p.num_micro_batches,
            stage_width: 1,
            amp: p.training.amp,
            recompute: p.training.recompute,
            efficiency: p.efficiency,
        };
        let pre = structural_lower_bound(&b, &cluster);
        assert!(pre > 0.0 && pre <= post, "pre {pre} vs post {post}");
    }

    #[test]
    fn keyed_bounds_are_bit_identical() {
        let cluster = Cluster::parse("4xV100,4xP100").unwrap();
        let mut cache = EstimateCache::new(&cluster);
        let b = StructuralBound {
            fw_flops_per_sample: 1e9,
            global_batch: 128,
            replicas: 2,
            depth: 4,
            num_micro: 8,
            stage_width: 1,
            amp: false,
            recompute: false,
            efficiency: 0.45,
        };
        let plain = structural_lower_bound(&b, &cluster);
        let miss = structural_lower_bound_keyed(&b, &mut cache);
        let before = cache.len();
        let hit = structural_lower_bound_keyed(&b, &mut cache);
        assert_eq!(plain.to_bits(), miss.to_bits());
        assert_eq!(miss.to_bits(), hit.to_bits());
        assert_eq!(cache.len(), before, "a hit must not grow the cache");
        // More micro batches can only lower the pre-plan bound's chain term.
        let wider = StructuralBound { num_micro: 32, ..b };
        assert!(structural_lower_bound(&wider, &cluster) <= plain);
    }

    #[test]
    fn pipeline_bubble_matches_closed_form() {
        let cluster = Cluster::parse("1x(4xV100)").unwrap();
        let g = models::bert_base(64, 64).unwrap();
        let ir = Annotator::new(g, 64)
            .auto_pipeline(12)
            .unwrap()
            .finish()
            .unwrap();
        let p = plan(&ir, &cluster, &PlannerConfig::default()).unwrap();
        let e = estimate_step(&p, &cluster).unwrap();
        assert!((e.bubble - 3.0 / 15.0).abs() < 1e-12);
        assert!(e.compute > 0.0);
    }
}
