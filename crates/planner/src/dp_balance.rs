//! Hardware-aware data-parallel partitioning — Algorithm 2 of the paper.
//!
//! Given a replicated TaskGraph, a global batch size, and the (possibly
//! heterogeneous) GPUs of its virtual device, split the batch proportionally
//! to each GPU's FLOPS, then repair any out-of-memory replicas with PSVF
//! using `shift_batch` as the shift function.

use crate::error::Result;
use crate::partition::proportional_split;
use crate::psvf::{psvf, psvf_traced, PsvfReport, Workload};
use whale_graph::{CostProfile, TrainingConfig};
use whale_hardware::Gpu;

/// Outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DpPartition {
    /// Batch size per replica, aligned with the input GPU order.
    pub batch_sizes: Vec<usize>,
    /// PSVF trace when the FLOP-proportional split overflowed memory.
    pub psvf: Option<PsvfReport>,
}

impl DpPartition {
    /// Per-replica memory ratios under `profile`/`cfg`.
    pub fn mem_ratios(
        &self,
        profile: &CostProfile,
        cfg: &TrainingConfig,
        gpus: &[Gpu],
        act_multiplier: f64,
    ) -> Vec<f64> {
        self.batch_sizes
            .iter()
            .zip(gpus)
            .map(|(&bs, gpu)| {
                cfg.memory_bytes(profile, bs, act_multiplier) as f64 / gpu.memory_bytes() as f64
            })
            .collect()
    }
}

/// The `shift_batch` workload: moving one unit moves one sample.
///
/// Per-replica memory/FLOP terms are cached (`mem`/`flops` vectors) and a
/// `shift` refreshes only the two replicas whose batch changed, so one PSVF
/// step costs O(devices) queries instead of O(devices) cost-model
/// re-evaluations. Entries are refreshed by the same `TrainingConfig` calls
/// that computed them, so caching cannot change any PSVF decision.
struct DpWorkload<'a> {
    batch_sizes: Vec<usize>,
    profile: &'a CostProfile,
    cfg: &'a TrainingConfig,
    gpus: &'a [Gpu],
    act_multiplier: f64,
    mem: Vec<u64>,
    flops: Vec<f64>,
}

impl<'a> DpWorkload<'a> {
    fn new(
        batch_sizes: Vec<usize>,
        profile: &'a CostProfile,
        cfg: &'a TrainingConfig,
        gpus: &'a [Gpu],
        act_multiplier: f64,
    ) -> DpWorkload<'a> {
        let mem = batch_sizes
            .iter()
            .map(|&bs| cfg.memory_bytes(profile, bs, act_multiplier))
            .collect();
        let flops = batch_sizes
            .iter()
            .map(|&bs| cfg.step_flops(profile, bs))
            .collect();
        DpWorkload {
            batch_sizes,
            profile,
            cfg,
            gpus,
            act_multiplier,
            mem,
            flops,
        }
    }

    fn refresh(&mut self, i: usize) {
        self.mem[i] = self
            .cfg
            .memory_bytes(self.profile, self.batch_sizes[i], self.act_multiplier);
        self.flops[i] = self.cfg.step_flops(self.profile, self.batch_sizes[i]);
    }
}

impl Workload for DpWorkload<'_> {
    fn len(&self) -> usize {
        self.gpus.len()
    }
    fn mem_bytes(&self, i: usize) -> u64 {
        self.mem[i]
    }
    fn mem_capacity(&self, i: usize) -> u64 {
        self.gpus[i].memory_bytes()
    }
    fn flops(&self, i: usize) -> f64 {
        self.flops[i]
    }
    fn flops_capacity(&self, i: usize) -> f64 {
        self.gpus[i].flops()
    }
    fn shift(&mut self, from: usize, to: usize) -> bool {
        if self.batch_sizes[from] == 0 {
            return false;
        }
        self.batch_sizes[from] -= 1;
        self.batch_sizes[to] += 1;
        self.refresh(from);
        self.refresh(to);
        true
    }
}

/// Algorithm 2: hardware-aware DP partition.
///
/// With `hardware_aware = false` this degrades to the paper's baseline — the
/// same batch size on every replica (largest-remainder split of the global
/// batch) with no PSVF — which is what Fig. 17 compares against.
pub fn dp_partition(
    profile: &CostProfile,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    global_batch: usize,
    act_multiplier: f64,
    hardware_aware: bool,
) -> Result<DpPartition> {
    partition(
        profile,
        cfg,
        gpus,
        global_batch,
        act_multiplier,
        hardware_aware,
        false,
    )
}

/// [`dp_partition`] with full per-step PSVF memory-ratio snapshots
/// ([`psvf_traced`]), for Fig. 10's step-by-step walk. Batch sizes are
/// identical to the untraced run — only the report's `mem_ratios` differ.
pub fn dp_partition_traced(
    profile: &CostProfile,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    global_batch: usize,
    act_multiplier: f64,
    hardware_aware: bool,
) -> Result<DpPartition> {
    partition(
        profile,
        cfg,
        gpus,
        global_batch,
        act_multiplier,
        hardware_aware,
        true,
    )
}

fn partition(
    profile: &CostProfile,
    cfg: &TrainingConfig,
    gpus: &[Gpu],
    global_batch: usize,
    act_multiplier: f64,
    hardware_aware: bool,
    traced: bool,
) -> Result<DpPartition> {
    let weights: Vec<f64> = if hardware_aware {
        gpus.iter().map(|g| g.flops()).collect()
    } else {
        vec![1.0; gpus.len()]
    };
    let batch_sizes = proportional_split(global_batch, &weights)?;
    if !hardware_aware {
        return Ok(DpPartition {
            batch_sizes,
            psvf: None,
        });
    }
    let mut w = DpWorkload::new(batch_sizes, profile, cfg, gpus, act_multiplier);
    // Lines 9-10: PSVF only when some replica overflows.
    let overflow = (0..w.len()).any(|i| w.mem_bytes(i) > w.mem_capacity(i));
    let report = if overflow {
        Some(if traced {
            psvf_traced(&mut w)?
        } else {
            psvf(&mut w)?
        })
    } else {
        None
    };
    Ok(DpPartition {
        batch_sizes: w.batch_sizes,
        psvf: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use whale_graph::{models, Optimizer};
    use whale_hardware::Cluster;

    fn cfg() -> TrainingConfig {
        TrainingConfig {
            optimizer: Optimizer::Adam,
            amp: false,
            recompute: false,
            ..TrainingConfig::default()
        }
    }

    #[test]
    fn baseline_splits_evenly() {
        let g = models::resnet50(16).unwrap();
        let p = CostProfile::from_graph(&g, 16);
        let cluster = Cluster::parse("2xV100,2xP100").unwrap();
        let dp = dp_partition(&p, &cfg(), cluster.gpus(), 64, 1.0, false).unwrap();
        assert_eq!(dp.batch_sizes, vec![16, 16, 16, 16]);
        assert!(dp.psvf.is_none());
    }

    #[test]
    fn hardware_aware_splits_by_flops() {
        let g = models::resnet50(16).unwrap();
        let p = CostProfile::from_graph(&g, 16);
        let cluster = Cluster::parse("2xV100,2xP100").unwrap();
        let dp = dp_partition(&p, &cfg(), cluster.gpus(), 64, 1.0, true).unwrap();
        assert_eq!(dp.batch_sizes.iter().sum::<usize>(), 64);
        assert!(dp.batch_sizes[0] > dp.batch_sizes[2]);
        let ratio = dp.batch_sizes[0] as f64 / dp.batch_sizes[2] as f64;
        assert!((ratio - 15.7 / 9.3).abs() < 0.35, "ratio {ratio}");
    }

    #[test]
    fn psvf_engages_on_memory_pressure() {
        // BERT-Large at a batch big enough to overflow the P100's 16 GB under
        // the FLOP-proportional split but fit after shifting to the V100.
        let g = models::bert_large(8, 128).unwrap();
        let p = CostProfile::from_graph(&g, 8);
        let cluster = Cluster::parse("1xV100,1xP100").unwrap();
        let c = cfg();
        // Find a global batch where the P100 share overflows.
        let mut global = 64;
        let overflowing = loop {
            let even = proportional_split(global, &[15.7, 9.3]).unwrap();
            let p100_mem = c.memory_bytes(&p, even[1], 1.0);
            if p100_mem > cluster.gpus()[1].memory_bytes() {
                break global;
            }
            global *= 2;
            assert!(global < 1 << 20, "never overflowed");
        };
        let dp = dp_partition(&p, &c, cluster.gpus(), overflowing, 1.0, true);
        match dp {
            Ok(dp) => {
                assert!(dp.psvf.is_some(), "PSVF should have engaged");
                assert_eq!(dp.batch_sizes.iter().sum::<usize>(), overflowing);
                let ratios = dp.mem_ratios(&p, &c, cluster.gpus(), 1.0);
                assert!(ratios.iter().all(|&r| r <= 1.0), "ratios {ratios:?}");
            }
            // If even the shifted layout cannot fit, Infeasible is the right
            // answer — but for this model/batch pair PSVF should succeed.
            Err(e) => panic!("expected feasible plan, got {e}"),
        }
    }

    #[test]
    fn global_batch_is_always_preserved() {
        let g = models::bert_base(4, 64).unwrap();
        let p = CostProfile::from_graph(&g, 4);
        let cluster = Cluster::parse("4xV100+4xP100").unwrap();
        for gb in [7, 32, 129, 500] {
            let dp = dp_partition(&p, &cfg(), cluster.gpus(), gb, 1.0, true).unwrap();
            assert_eq!(dp.batch_sizes.iter().sum::<usize>(), gb, "gb={gb}");
        }
    }
}
