//! Counter-exact incrementality tests for the interned graph core.
//!
//! The interner instruments itself with monotonic counters
//! ([`whale_graph::intern::counters`]) so these tests can assert that work
//! *didn't* happen — a block wasn't re-fingerprinted, adjacency wasn't
//! rebuilt — instead of trying to time it. The counters and the intern
//! table are process-global, so every test takes one lock and builds
//! blocks with shapes no other test uses; this file stays its own test
//! binary so unrelated integration tests can't run in the same process.

use std::sync::Mutex;

use whale_graph::graph::Graph;
use whale_graph::intern::counters;
use whale_graph::models;
use whale_graph::{set_default_interning, GraphBuilder};

static GUARD: Mutex<()> = Mutex::new(());

/// A small interned encoder stack. The `intermediate` width doubles as a
/// test-local namespace: templates are content-addressed (the instance
/// prefix is *not* part of the template), so distinct widths are the only
/// way to keep one test's blocks out of another's interner buckets.
fn encoder(name: &str, layers: usize, intermediate: usize) -> Graph {
    let mut b = GraphBuilder::with_interning(name, true);
    let mut h = b.input("x", &[2, 16, 64]).unwrap();
    for i in 0..layers {
        h = b
            .encoder_layer(&format!("enc.{i}"), h, 2, 16, 64, 4, intermediate)
            .unwrap();
    }
    b.finish()
}

#[test]
fn identical_layers_intern_to_one_allocation() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());

    let (h0, m0) = (counters::intern_hits(), counters::intern_misses());
    let g = encoder("hits", 8, 288);
    assert_eq!(g.block_count(), 8);
    // One miss creates the template; the other seven layers hit it.
    assert_eq!(counters::intern_misses() - m0, 1);
    assert_eq!(counters::intern_hits() - h0, 7);

    // A second build of the same shapes allocates no new template at all.
    let (h1, m1) = (counters::intern_hits(), counters::intern_misses());
    let again = encoder("hits-again", 8, 288);
    assert_eq!(counters::intern_misses() - m1, 0);
    assert_eq!(counters::intern_hits() - h1, 8);
    assert_eq!(again.block_count(), 8);
}

#[test]
fn refingerprint_is_free_and_a_block_edit_rehashes_exactly_one_block() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());

    let g = encoder("inc", 6, 320);
    let c0 = counters::inst_sum_computes();
    let first = g.fingerprint();
    // Cold fingerprint: one content-sum per block instance.
    assert_eq!(counters::inst_sum_computes() - c0, 6);

    // Warm re-fingerprints — of the graph and of a clone — hit the per-
    // instance memo and recompute nothing.
    let c1 = counters::inst_sum_computes();
    assert_eq!(g.fingerprint(), first);
    assert_eq!(g.clone().fingerprint(), first);
    assert_eq!(counters::inst_sum_computes() - c1, 0);

    // Splice in one edited layer: re-fingerprinting the result computes a
    // content sum for the *new* instance only; the five untouched blocks
    // keep their memoized subtotals through the structural copy.
    let donor = encoder("inc-donor", 1, 352);
    let edited = g.with_block_replaced(3, &donor, 0).unwrap();
    let c2 = counters::inst_sum_computes();
    let efp = edited.fingerprint();
    assert_eq!(counters::inst_sum_computes() - c2, 1);
    assert_ne!(efp, first);

    // And the incremental result is bit-identical to a flat re-hash.
    let mut reference = Graph::new("inc");
    for op in edited.ops() {
        reference
            .add_op(
                op.name.clone(),
                op.kind.clone(),
                op.inputs.clone(),
                op.output.clone(),
                op.phase,
                op.layer,
            )
            .unwrap();
    }
    assert_eq!(efp, reference.fingerprint());
}

#[test]
fn block_adjacency_is_built_once_and_shared_across_graphs() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());

    let a = encoder("adj-a", 5, 384);
    let b0 = counters::block_adj_builds();
    let _ = a.consumers();
    // Five instances of one distinct block: one adjacency build.
    assert_eq!(counters::block_adj_builds() - b0, 1);

    // A second graph interning the same block reuses that adjacency — zero
    // builds — because the template allocation itself is shared.
    let b = encoder("adj-b", 5, 384);
    let b1 = counters::block_adj_builds();
    let _ = b.consumers();
    assert_eq!(counters::block_adj_builds() - b1, 0);
    assert_eq!(a.consumers(), b.consumers());
}

#[test]
fn default_interning_is_transparent_across_the_zoo() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());

    // Interned and flat builds of the same model must produce the same
    // ops and the same fingerprint — the representation is invisible to
    // every consumer except the allocator.
    let was = set_default_interning(true);
    let build: &[fn() -> Graph] = &[
        || models::bert_base(4, 32).unwrap(),
        || models::gpt2_xl(2, 32).unwrap(),
        || models::m6_moe(models::MoeConfig::tiny(), 8).unwrap(),
        || models::resnet50(8).unwrap(),
    ];
    let mut fingerprints = Vec::new();
    for make in build {
        set_default_interning(true);
        let interned = make();
        set_default_interning(false);
        let flat = make();
        assert_eq!(flat.block_count(), 0);
        assert_eq!(interned.ops(), flat.ops());
        assert_eq!(interned.fingerprint(), flat.fingerprint());
        fingerprints.push(interned.fingerprint());
    }
    set_default_interning(was);

    // Collision sanity across the zoo members above.
    for i in 0..fingerprints.len() {
        for j in i + 1..fingerprints.len() {
            assert_ne!(fingerprints[i], fingerprints[j], "members {i} and {j}");
        }
    }
}
