//! Virtual devices under cluster churn: delta sequences must keep
//! `VirtualDevice` bindings, `slice_cluster` partitions, and
//! `Cluster::subcluster` views mutually consistent.
//!
//! The invariants under test:
//!
//! * **partition closure** — after any legal `ClusterDelta` sequence and
//!   the matching `remap_removed`/`remap_inserted` calls, the bindings
//!   plus the free set still form an exact partition of the pool
//!   (`validate_partition`);
//! * **identity tracking** — a binding keeps pointing at the *same
//!   physical GPUs* across renumbering: each member's model and
//!   throughput scale in the pool match what `subcluster` carves out;
//! * **trace replay** — the invariants survive a full generated
//!   `FaultTrace` (including its internal shadow-id renumbering of
//!   pending heals), not just hand-picked deltas.

use whale_hardware::{
    slice_cluster, validate_partition, Cluster, ClusterDelta, GpuModel, SliceStrategy,
    VirtualDevice,
};
use whale_sim::{FaultModel, FaultTrace};

/// Bindings + free list must exactly cover the pool.
fn assert_partition(pool: &Cluster, bindings: &[VirtualDevice], free: &[usize]) {
    let mut vds: Vec<VirtualDevice> = bindings.to_vec();
    if !free.is_empty() {
        vds.push(VirtualDevice::new(free.to_vec()).unwrap());
    }
    validate_partition(pool, &vds)
        .unwrap_or_else(|e| panic!("partition broke: {e} (free {free:?})"));
}

/// Every binding must carve into a subcluster whose GPUs mirror the pool's
/// models and throughput scales, member by member.
fn assert_bindings_carve(pool: &Cluster, bindings: &[VirtualDevice]) {
    for (v, vd) in bindings.iter().enumerate() {
        let sub = pool
            .subcluster(vd.gpu_ids())
            .unwrap_or_else(|e| panic!("binding {v} no longer carves: {e}"));
        assert_eq!(sub.num_gpus(), vd.num_gpus());
        for (local, &global) in vd.gpu_ids().iter().enumerate() {
            let pool_gpu = pool.gpu(global).unwrap();
            let sub_gpu = sub.gpu(local).unwrap();
            assert_eq!(sub_gpu.model, pool_gpu.model, "binding {v} member {local}");
            assert_eq!(
                sub_gpu.throughput_scale, pool_gpu.throughput_scale,
                "binding {v} member {local} lost its degradation state"
            );
        }
    }
}

/// Apply `delta` to `pool` and remap `bindings` + `free` the way a
/// scheduler must: removals drop-and-shift, insertions shift-and-free.
fn apply_and_remap(
    pool: &mut Cluster,
    delta: ClusterDelta,
    bindings: &mut Vec<VirtualDevice>,
    free: &mut Vec<usize>,
) {
    match delta {
        ClusterDelta::GpuRemoved { id } => {
            pool.apply_delta(delta).unwrap();
            free.retain(|&g| g != id);
            for g in free.iter_mut() {
                if *g > id {
                    *g -= 1;
                }
            }
            *bindings = bindings
                .iter()
                .filter_map(|b| b.remap_removed(id))
                .collect();
        }
        ClusterDelta::GpuAdded { node, .. } => {
            // The insertion point must be computed against the *pre-delta*
            // pool — that is the id the new GPU will occupy.
            let at = pool.insertion_id(node).unwrap();
            pool.apply_delta(delta).unwrap();
            for g in free.iter_mut() {
                if *g >= at {
                    *g += 1;
                }
            }
            for b in bindings.iter_mut() {
                *b = b.remap_inserted(at);
            }
            free.push(at);
            free.sort_unstable();
        }
        _ => pool.apply_delta(delta).unwrap(),
    }
}

#[test]
fn bindings_survive_degrade_heal_remove_add() {
    let mut pool = Cluster::parse("2x(4xV100)+1x(4xP100)").unwrap();
    // Three tenants of 3 GPUs each; ids 9..12 free.
    let mut bindings: Vec<VirtualDevice> = (0..3)
        .map(|i| VirtualDevice::new((i * 3..(i + 1) * 3).collect()).unwrap())
        .collect();
    let mut free: Vec<usize> = (9..12).collect();
    assert_partition(&pool, &bindings, &free);

    let script = [
        ClusterDelta::GpuDegraded { id: 4, scale: 0.3 },
        ClusterDelta::GpuRemoved { id: 1 },  // inside binding 0
        ClusterDelta::GpuRestored { id: 3 }, // old id 4, shifted down
        ClusterDelta::GpuRemoved { id: 9 },  // from the free tail
        ClusterDelta::GpuAdded {
            node: 1,
            model: GpuModel::V100_32GB,
        },
        ClusterDelta::GpuDegraded { id: 0, scale: 0.5 },
        ClusterDelta::GpuRemoved { id: 0 }, // degraded GPU leaves entirely
        ClusterDelta::GpuAdded {
            node: 2,
            model: GpuModel::P100_16GB,
        },
    ];
    for delta in script {
        apply_and_remap(&mut pool, delta, &mut bindings, &mut free);
        assert_partition(&pool, &bindings, &free);
        assert_bindings_carve(&pool, &bindings);
    }
    // Binding 0 lost ids 1 and (renumbered) 0 but kept its third member.
    assert_eq!(bindings[0].num_gpus(), 1);
    assert_eq!(bindings[1].num_gpus(), 3);
    assert_eq!(bindings[2].num_gpus(), 3);
    let total: usize = bindings.iter().map(|b| b.num_gpus()).sum();
    assert_eq!(total + free.len(), pool.num_gpus());
}

#[test]
fn binding_that_loses_every_gpu_dissolves_cleanly() {
    let mut pool = Cluster::parse("1x(4xV100)").unwrap();
    let mut bindings = vec![
        VirtualDevice::new(vec![0, 1]).unwrap(),
        VirtualDevice::new(vec![2, 3]).unwrap(),
    ];
    let mut free = Vec::new();
    // Remove binding 0's two GPUs; it must vanish, not linger empty.
    apply_and_remap(
        &mut pool,
        ClusterDelta::GpuRemoved { id: 0 },
        &mut bindings,
        &mut free,
    );
    apply_and_remap(
        &mut pool,
        ClusterDelta::GpuRemoved { id: 0 },
        &mut bindings,
        &mut free,
    );
    assert_eq!(bindings.len(), 1, "emptied binding must dissolve");
    assert_eq!(
        bindings[0].gpu_ids(),
        &[0, 1],
        "survivor renumbered to front"
    );
    assert_partition(&pool, &bindings, &free);
    assert_bindings_carve(&pool, &bindings);
}

#[test]
fn generated_trace_replay_preserves_partition_and_identity() {
    // Replay full generated fault timelines — degrades, crashes (with the
    // trace's own shadow-id renumbering of pending heals), congestion,
    // restores, joins — against a per-node slicing of the pool.
    for seed in [0u64, 7, 42, 1776] {
        let mut pool = Cluster::parse("2x(4xV100)+2x(4xP100)").unwrap();
        let model = FaultModel {
            mtbf_samples: 600.0,
            mttr_samples: 400.0,
            seed,
        };
        let trace = FaultTrace::generate(&pool, &model, 20_000.0);
        assert!(trace.len() > 10, "seed {seed}: trace too calm to test");

        let mut bindings = slice_cluster(&pool, 0, SliceStrategy::PerNode).unwrap();
        let mut free: Vec<usize> = Vec::new();
        validate_partition(&pool, &bindings).unwrap();

        let mut structural = 0;
        for ev in &trace.events {
            if matches!(
                ev.delta,
                ClusterDelta::GpuRemoved { .. } | ClusterDelta::GpuAdded { .. }
            ) {
                structural += 1;
            }
            apply_and_remap(&mut pool, ev.delta, &mut bindings, &mut free);
            assert_partition(&pool, &bindings, &free);
            assert_bindings_carve(&pool, &bindings);
        }
        assert!(
            structural > 0,
            "seed {seed}: no structural churn exercised the remaps"
        );
    }
}

#[test]
fn trace_restores_target_live_gpus_after_renumbering() {
    // A crash renumbers every later event's ids. Replaying the trace must
    // never produce an out-of-range or double-restore delta — the trace
    // generator's shadow renumbering and `apply_delta`'s validation agree.
    for seed in [1u64, 9, 123] {
        let mut pool = Cluster::parse("2x(4xV100)+1x(4xP100)").unwrap();
        let trace = FaultTrace::generate(
            &pool,
            &FaultModel {
                mtbf_samples: 300.0,
                mttr_samples: 900.0,
                seed,
            },
            30_000.0,
        );
        for ev in &trace.events {
            if let ClusterDelta::GpuRestored { id } | ClusterDelta::GpuDegraded { id, .. } =
                ev.delta
            {
                assert!(id < pool.num_gpus(), "seed {seed}: stale id {id}");
            }
            pool.apply_delta(ev.delta)
                .unwrap_or_else(|e| panic!("seed {seed}: replay broke: {e} at {ev:?}"));
        }
    }
}
