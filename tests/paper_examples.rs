//! End-to-end integration tests: each of the paper's code Examples 1-8,
//! annotated, planned, and simulated across all crates.

use whale::{auto_parallel, models, strategies, Primitive, Session};
use whale_hardware::Collective;
use whale_ir::{Annotator, ScopedBuilder};

#[test]
fn example1_data_parallelism_end_to_end() {
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let ir = strategies::data_parallel(models::resnet50(64).unwrap(), 64).unwrap();
    let out = session.step(&ir).unwrap();
    assert!(out.stats.throughput > 0.0);
    assert!(!out.stats.has_oom());
    // All four replicas hold the full model and sync together.
    let plan = session.plan(&ir).unwrap();
    assert_eq!(plan.grad_syncs.len(), 1);
    assert_eq!(plan.grad_syncs[0].group.len(), 4);
}

#[test]
fn example2_vanilla_model_parallel_end_to_end() {
    let g = models::bert_base(8, 64).unwrap();
    let n = g.len();
    let ir = strategies::vanilla_model_parallel(g, 8, n / 2).unwrap();
    let session = Session::on_cluster("1x(2xV100)").unwrap();
    let plan = session.plan(&ir).unwrap();
    assert_eq!(plan.stages.len(), 2);
    // Each stage sits on its own GPU; activations cross between them.
    assert_ne!(plan.stages[0].gpu_ids(), plan.stages[1].gpu_ids());
    assert!(plan.stages[0].send_bytes_per_micro > 0);
    let out = session.step_plan(&plan).unwrap();
    assert!(out.stats.step_time > 0.0);
}

#[test]
fn example3_manual_stage_pipeline_end_to_end() {
    let g = models::bert_base(32, 64).unwrap();
    let n = g.len();
    let ir = Annotator::new(g, 32)
        .outer_replica()
        .pipeline(4)
        .unwrap()
        .annotate_range(0, n / 2, vec![Primitive::Stage])
        .unwrap()
        .annotate_range(n / 2, n, vec![Primitive::Stage])
        .unwrap()
        .finish()
        .unwrap();
    let session = Session::on_cluster("2x(2xV100)").unwrap().outer_dp(2);
    let out = session.step(&ir).unwrap();
    assert_eq!(out.timeline.len(), 2 * 2 * 4, "2 stages × (F+B) × 4 micros");
}

#[test]
fn example4_auto_pipeline_end_to_end() {
    let ir = strategies::pipeline_with_dp(models::bert_base(64, 64).unwrap(), 64, 8).unwrap();
    let session = Session::on_cluster("2x(4xV100)").unwrap().outer_dp(2);
    let plan = session.plan(&ir).unwrap();
    assert_eq!(plan.stages.len(), 4, "one stage per GPU of a plan replica");
    assert_eq!(plan.num_micro_batches, 8);
    // DP over the pipeline: per-stage sync across the two replicas.
    assert_eq!(plan.grad_syncs.len(), 4);
    let out = session.step_plan(&plan).unwrap();
    assert!(out.stats.bubble_ratio() < 0.6);
}

#[test]
fn example5_hybrid_dp_split_end_to_end() {
    let ir =
        strategies::feature_dp_classifier_split(models::imagenet_100k(64).unwrap(), 64, "fc_big")
            .unwrap();
    let session = Session::on_cluster("1x(8xV100)").unwrap();
    let plan = session.plan(&ir).unwrap();
    // The split classifier must not appear in the gradient sync.
    let fc_params = 2048u64 * 100_000 * 4;
    assert!(
        plan.grad_sync_bytes() < fc_params,
        "sync {} should exclude the {}-byte FC",
        plan.grad_sync_bytes(),
        fc_params
    );
    let out = session.step_plan(&plan).unwrap();
    assert!(!out.stats.has_oom());
}

#[test]
fn example6_auto_parallel_end_to_end() {
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let report = auto_parallel(&session, 64, || Ok(models::resnet50(64).unwrap())).unwrap();
    assert!(report.stats.throughput > 0.0);
    assert!(!report.candidates.is_empty());
}

#[test]
fn example7_m6_style_pipeline_with_recompute() {
    use whale::{Optimizer, TrainingConfig};
    // A shrunken M6 keeps the test fast while exercising the same path.
    let cfg = whale::models::M6Config::tiny();
    let g = whale::models::m6(cfg, 32).unwrap();
    let ir = strategies::pipeline_with_dp(g, 32, 8).unwrap();
    let session = Session::on_cluster("2x(4xV100)")
        .unwrap()
        .outer_dp(2)
        .training(TrainingConfig {
            optimizer: Optimizer::Adafactor,
            amp: false,
            recompute: true,
            ..TrainingConfig::default()
        });
    let out = session.step(&ir).unwrap();
    assert!(!out.stats.has_oom());
    assert!(out.stats.step_time > 0.0);
}

#[test]
fn example8_moe_end_to_end() {
    let g = models::m6_moe(models::MoeConfig::tiny(), 32).unwrap();
    let ir = strategies::moe_hybrid(g, 32).unwrap();
    let session = Session::on_cluster("1x(8xV100)").unwrap();
    let plan = session.plan(&ir).unwrap();
    // Expert dispatch is AllToAll; attention syncs by AllReduce.
    assert!(plan
        .stages
        .iter()
        .flat_map(|s| &s.collectives_per_micro)
        .any(|c| c.kind == Collective::AllToAll));
    assert!(plan
        .grad_syncs
        .iter()
        .all(|c| c.kind == Collective::AllReduce));
    let out = session.step_plan(&plan).unwrap();
    assert!(!out.stats.has_oom());
}

#[test]
fn scoped_api_matches_annotator_for_example5() {
    // Build the same two-part model through both APIs and check the IRs
    // agree structurally.
    let mut sb = ScopedBuilder::new("m", 16);
    sb.replica(|sb| {
        sb.replica(|sb| {
            sb.ops(|b| {
                let x = b.input("x", &[16, 32])?;
                b.dense("features", x, 16, 32, 64)
            })
        })?;
        sb.split(|sb| sb.ops(|b| b.dense("classifier", whale_graph::OpId(1), 16, 64, 1000)))
    })
    .unwrap();
    let scoped = sb.finish().unwrap();

    assert!(scoped.outer_replica);
    assert_eq!(scoped.num_task_graphs(), 2);
    assert_eq!(scoped.task_graphs[0].innermost(), Primitive::Replica);
    assert_eq!(scoped.task_graphs[1].innermost(), Primitive::Split);

    let session = Session::on_cluster("2x(2xV100)").unwrap();
    let out = session.step(&scoped).unwrap();
    assert!(out.stats.throughput > 0.0);
}
