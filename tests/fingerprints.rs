//! Stability and sensitivity of the content fingerprints behind the plan
//! cache. Stability: the same model / cluster / config content must hash
//! identically however it was produced (built twice, parsed from a spec,
//! round-tripped through the repo's own serialized forms). Sensitivity: any
//! planner-visible field change — one GPU's memory, one op's shape, the
//! efficiency constant — must change the key, or the cache would serve a
//! stale plan.

use whale::{models, strategies, Cluster, ClusterDelta, PlannerConfig, ScheduleKind};
use whale_fp::Fingerprint;
use whale_planner::PlanKey;

fn dp_ir(batch: usize, seq: usize) -> whale::WhaleIr {
    strategies::data_parallel(models::bert_base(batch, seq).unwrap(), batch).unwrap()
}

// --- stability -----------------------------------------------------------

#[test]
fn same_content_built_twice_hashes_identically() {
    // Model zoo: independent builder invocations.
    assert_eq!(
        models::resnet50(64).unwrap().fingerprint(),
        models::resnet50(64).unwrap().fingerprint()
    );
    assert_eq!(dp_ir(32, 64).fingerprint(), dp_ir(32, 64).fingerprint());
    assert_eq!(
        strategies::pipeline_with_dp(models::gpt2_xl(16, 64).unwrap(), 16, 4)
            .unwrap()
            .fingerprint(),
        strategies::pipeline_with_dp(models::gpt2_xl(16, 64).unwrap(), 16, 4)
            .unwrap()
            .fingerprint()
    );
    // Cluster: independent parses of one spec.
    let spec = "2x(8xV100)+2x(8xP100)";
    assert_eq!(
        Cluster::parse(spec).unwrap().fingerprint(),
        Cluster::parse(spec).unwrap().fingerprint()
    );
    // Config: independent constructions.
    assert_eq!(
        PlannerConfig::default().fingerprint(),
        PlannerConfig::default().fingerprint()
    );
}

#[test]
fn clone_round_trip_preserves_fingerprints() {
    let ir = dp_ir(32, 64);
    let cluster = Cluster::parse("8xV100+8xP100").unwrap();
    let config = PlannerConfig::default();
    assert_eq!(ir.fingerprint(), ir.clone().fingerprint());
    assert_eq!(cluster.fingerprint(), cluster.clone().fingerprint());
    assert_eq!(config.fingerprint(), config.clone().fingerprint());
}

#[test]
fn plan_key_display_round_trips() {
    // The CLI prints keys as `ir/cluster/config` hex; parsing that text back
    // must reproduce the exact fingerprints (the repo-native serialized form).
    let ir = dp_ir(32, 64);
    let cluster = Cluster::parse("4xV100").unwrap();
    let config = PlannerConfig::default();
    let key = PlanKey::new(&ir, &cluster, &config);
    let text = key.to_string();
    let parts: Vec<Fingerprint> = text
        .split('/')
        .map(|p| Fingerprint(u64::from_str_radix(p, 16).unwrap()))
        .collect();
    assert_eq!(parts, vec![key.ir, key.cluster, key.config]);
    // And the same inputs produce the same key on a second computation.
    assert_eq!(key, PlanKey::new(&ir, &cluster, &config));
}

#[test]
fn degradation_round_trips_to_the_original_fingerprint() {
    let base = Cluster::parse("4xV100").unwrap();
    let mut c = base.clone();
    c.apply_delta(ClusterDelta::GpuDegraded { id: 2, scale: 0.5 })
        .unwrap();
    assert_ne!(base.fingerprint(), c.fingerprint());
    c.apply_delta(ClusterDelta::GpuRestored { id: 2 }).unwrap();
    assert_eq!(base.fingerprint(), c.fingerprint());
}

// --- sensitivity ---------------------------------------------------------

#[test]
fn one_gpus_memory_changes_the_cluster_fingerprint() {
    // V100-32GB and V100-16GB differ only in memory capacity; swapping one
    // GPU's variant must re-key the cache.
    let a = Cluster::parse("4xV100").unwrap();
    let b = Cluster::parse("3xV100+1xV100_16GB").unwrap();
    assert_eq!(a.num_gpus(), b.num_gpus());
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn one_ops_shape_changes_the_ir_fingerprint() {
    // Same architecture, one tensor dimension different.
    assert_ne!(dp_ir(32, 64).fingerprint(), dp_ir(32, 128).fingerprint());
    assert_ne!(dp_ir(32, 64).fingerprint(), dp_ir(64, 64).fingerprint());
}

#[test]
fn annotation_changes_change_the_ir_fingerprint() {
    let g = || models::bert_base(32, 64).unwrap();
    let dp = strategies::data_parallel(g(), 32).unwrap();
    let pipe = strategies::pipeline_with_dp(g(), 32, 4).unwrap();
    let pipe8 = strategies::pipeline_with_dp(g(), 32, 8).unwrap();
    assert_ne!(dp.fingerprint(), pipe.fingerprint());
    assert_ne!(pipe.fingerprint(), pipe8.fingerprint(), "micro batches");
}

#[test]
fn every_planner_config_field_is_keyed() {
    let base = PlannerConfig::default();
    let variants = [
        PlannerConfig {
            efficiency: base.efficiency * 0.9,
            ..base.clone()
        },
        PlannerConfig {
            hardware_aware: !base.hardware_aware,
            ..base.clone()
        },
        PlannerConfig {
            outer_dp: base.outer_dp + 1,
            ..base.clone()
        },
        PlannerConfig {
            schedule: ScheduleKind::GPipe,
            ..base.clone()
        },
        PlannerConfig {
            memoize: !base.memoize,
            ..base.clone()
        },
        PlannerConfig {
            training: whale::TrainingConfig {
                amp: true,
                ..base.training
            },
            ..base.clone()
        },
        PlannerConfig {
            comm: whale::CommConfig {
                fusion_bytes: base.comm.fusion_bytes + (1 << 20),
                ..base.comm
            },
            ..base.clone()
        },
        PlannerConfig {
            comm: whale::CommConfig {
                auto_algorithm: !base.comm.auto_algorithm,
                ..base.comm
            },
            ..base.clone()
        },
        PlannerConfig {
            comm: base.comm.dtype(whale::GradDtype::Bf16),
            ..base.clone()
        },
        PlannerConfig {
            comm: base.comm.dtype(whale::GradDtype::Fp8),
            ..base.clone()
        },
        PlannerConfig {
            comm: base.comm.compress(0.5),
            ..base.clone()
        },
    ];
    for v in &variants {
        assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
    }
    // Pairwise distinct too: bf16 and fp8 must not collide, nor dtype with
    // compression.
    for (i, a) in variants.iter().enumerate() {
        for b in variants.iter().skip(i + 1) {
            assert_ne!(a.fingerprint(), b.fingerprint(), "{a:?} vs {b:?}");
        }
    }
}

#[test]
fn comm_config_fingerprint_changes_iff_a_field_changes() {
    // Spelling out the defaults is content-identical — same key.
    let base = PlannerConfig::default();
    let explicit = PlannerConfig {
        comm: base.comm.dtype(whale::GradDtype::Fp32).compress(1.0),
        ..base.clone()
    };
    assert_eq!(base.fingerprint(), explicit.fingerprint());
    // And any real precision change re-keys (cache must not serve an fp32
    // plan to a bf16 request).
    let bf16 = PlannerConfig {
        comm: base.comm.dtype(whale::GradDtype::Bf16),
        ..base.clone()
    };
    assert_ne!(base.fingerprint(), bf16.fingerprint());
}

#[test]
fn cluster_topology_is_keyed_not_just_the_gpu_census() {
    // Identical GPU multiset, different node layout: interconnects differ,
    // so the planner can produce different plans — the key must differ.
    let a = Cluster::parse("2x(8xV100)").unwrap();
    let b = Cluster::parse("4x(4xV100)").unwrap();
    assert_eq!(a.num_gpus(), b.num_gpus());
    assert_ne!(a.fingerprint(), b.fingerprint());
}
