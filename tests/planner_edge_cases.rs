//! Error paths and boundary conditions in the planner: a production system
//! must fail loudly and precisely, never silently misplan.

use whale::{models, strategies, Session};
use whale_hardware::{Cluster, VirtualDevice};
use whale_ir::{Annotator, Primitive};
use whale_planner::{plan, DeviceAssignment, PlanError, PlannerConfig};

fn dp_ir(batch: usize) -> whale::WhaleIr {
    strategies::data_parallel(models::resnet50(batch).unwrap(), batch).unwrap()
}

#[test]
fn batch_smaller_than_gpu_count_still_plans() {
    // 3 samples over 8 GPUs: some replicas receive zero samples — the plan
    // must still be valid and conserve the batch.
    let session = Session::on_cluster("1x(8xV100)").unwrap();
    let p = session.plan(&dp_ir(3)).unwrap();
    let total: usize = p.stages[0].devices.iter().map(|d| d.samples_per_step).sum();
    assert_eq!(total, 3);
    let out = session.step_plan(&p).unwrap();
    assert!(out.stats.step_time > 0.0);
}

#[test]
fn outer_dp_must_divide_gpu_count() {
    let g = models::bert_base(30, 64).unwrap();
    let ir = Annotator::new(g, 30)
        .outer_replica()
        .auto_pipeline(4)
        .unwrap()
        .finish()
        .unwrap();
    let cluster = Cluster::parse("1x(6xV100)").unwrap();
    let cfg = PlannerConfig {
        outer_dp: 4, // 6 GPUs not divisible into 4 replicas
        ..PlannerConfig::default()
    };
    assert!(matches!(
        plan(&ir, &cluster, &cfg).unwrap_err(),
        PlanError::BadConfig(_)
    ));
}

#[test]
fn vd_count_must_match_taskgraph_count() {
    let g = models::bert_base(16, 64).unwrap();
    let n = g.len();
    let ir = Annotator::new(g, 16)
        .annotate_range(0, n / 2, vec![Primitive::Replica])
        .unwrap()
        .annotate_range(n / 2, n, vec![Primitive::Replica])
        .unwrap()
        .finish()
        .unwrap();
    let cluster = Cluster::parse("1x(4xV100)").unwrap();
    let cfg = PlannerConfig {
        devices: DeviceAssignment::PerTaskGraph(vec![
            VirtualDevice::new(vec![0, 1]).unwrap(), // only one VD for two TGs
        ]),
        ..PlannerConfig::default()
    };
    assert!(matches!(
        plan(&ir, &cluster, &cfg).unwrap_err(),
        PlanError::BadDeviceAssignment(_)
    ));
}

#[test]
fn vd_outside_cluster_rejected() {
    let g = models::resnet50(16).unwrap();
    let ir = Annotator::new(g, 16)
        .replicate_all()
        .unwrap()
        .finish()
        .unwrap();
    let cluster = Cluster::parse("1x(2xV100)").unwrap();
    let cfg = PlannerConfig {
        devices: DeviceAssignment::PerTaskGraph(vec![VirtualDevice::new(vec![0, 1, 7]).unwrap()]),
        ..PlannerConfig::default()
    };
    assert!(plan(&ir, &cluster, &cfg).is_err());
}

#[test]
fn micro_batches_exceeding_batch_still_plan() {
    // 4 samples, 16 micro batches: micro batches are fractional-sample but
    // the plan stays consistent (FLOPs conserve).
    let g = models::bert_base(4, 64).unwrap();
    let ir = Annotator::new(g, 4)
        .auto_pipeline(16)
        .unwrap()
        .finish()
        .unwrap();
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let p = session.plan(&ir).unwrap();
    assert_eq!(p.num_micro_batches, 16);
    let out = session.step_plan(&p).unwrap();
    assert!(out.stats.step_time > 0.0);
}

#[test]
fn single_gpu_everything_degenerates_gracefully() {
    let session = Session::on_cluster("1xV100").unwrap();
    let p = session.plan(&dp_ir(32)).unwrap();
    assert_eq!(p.stages[0].devices.len(), 1);
    assert!(p.grad_syncs.is_empty(), "no peers to sync with");
    let out = session.step_plan(&p).unwrap();
    assert_eq!(out.stats.sync_time_total, 0.0);
    assert_eq!(out.stats.per_gpu.len(), 1);
}

#[test]
fn more_stages_than_ops_fails_cleanly() {
    // A 4-op model cannot fill 8 pipeline stages.
    let mut b = whale_graph::GraphBuilder::new("tiny");
    let x = b.input("x", &[4, 8]).unwrap();
    let h = b.dense("fc1", x, 4, 8, 8).unwrap();
    b.dense("fc2", h, 4, 8, 8).unwrap();
    let ir = Annotator::new(b.finish(), 4)
        .auto_pipeline(2)
        .unwrap()
        .finish()
        .unwrap();
    let cluster = Cluster::parse("1x(8xV100)").unwrap();
    assert!(plan(&ir, &cluster, &PlannerConfig::default()).is_err());
}

#[test]
fn infeasible_memory_is_an_explicit_error_under_awareness() {
    // GPT-2 XL DP replicas cannot fit 16 GB P100s even after PSVF: the
    // planner must say Infeasible, not emit a doomed plan.
    let g = models::gpt2_xl(64, 256).unwrap();
    let ir = Annotator::new(g, 64)
        .replicate_all()
        .unwrap()
        .finish()
        .unwrap();
    let cluster = Cluster::parse("1x(4xP100)").unwrap();
    let err = plan(&ir, &cluster, &PlannerConfig::default()).unwrap_err();
    assert!(matches!(err, PlanError::Infeasible(_)), "got {err:?}");
}

#[test]
fn baseline_mode_emits_the_doomed_plan_for_comparison() {
    // With hardware awareness off (the paper's baseline), the planner does
    // not attempt PSVF; the simulator then reports the OOM.
    let g = models::gpt2_xl(64, 256).unwrap();
    let ir = Annotator::new(g, 64)
        .replicate_all()
        .unwrap()
        .finish()
        .unwrap();
    let session = Session::on_cluster("1x(4xP100)")
        .unwrap()
        .hardware_aware(false);
    let p = session.plan(&ir).unwrap();
    let out = session.step_plan(&p).unwrap();
    assert!(out.stats.has_oom());
}

#[test]
fn zero_global_batch_is_rejected_or_empty() {
    let g = models::resnet50(1).unwrap();
    let ir = Annotator::new(g, 0)
        .replicate_all()
        .unwrap()
        .finish()
        .unwrap();
    let cluster = Cluster::parse("1x(2xV100)").unwrap();
    // Zero batch planning yields zero samples everywhere (valid but inert)
    // or an explicit error — never a panic.
    if let Ok(p) = plan(&ir, &cluster, &PlannerConfig::default()) {
        let total: usize = p.stages[0].devices.iter().map(|d| d.samples_per_step).sum();
        assert_eq!(total, 0);
    }
}
