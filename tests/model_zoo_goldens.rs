//! Golden numbers for the model zoo: parameter counts against published
//! values and FLOP sanity via the `≈ 2·params·tokens` rule for dense LMs.
//! These pin the cost model the whole reproduction rests on.

use whale::models;

fn params(g: &whale::Graph) -> f64 {
    g.total_params() as f64
}

#[test]
fn published_parameter_counts() {
    // (builder result, published params, tolerance)
    let cases: Vec<(&str, f64, f64, f64)> = vec![
        (
            "resnet50",
            params(&models::resnet50(1).unwrap()),
            25.6e6,
            0.10,
        ),
        (
            "bert_base",
            params(&models::bert_base(1, 128).unwrap()),
            110e6,
            0.25,
        ),
        (
            "bert_large",
            params(&models::bert_large(1, 128).unwrap()),
            340e6,
            0.10,
        ),
        (
            "t5_large",
            params(&models::t5_large(1, 128, 128).unwrap()),
            770e6,
            0.12,
        ),
        (
            "vit_large",
            params(&models::vit_large(1).unwrap()),
            304e6,
            0.10,
        ),
        (
            "gpt2_xl",
            params(&models::gpt2_xl(1, 128).unwrap()),
            1.56e9,
            0.10,
        ),
        ("gnmt", params(&models::gnmt(1, 50).unwrap()), 278e6, 0.25),
        ("m6_10b", params(&models::m6_10b(1).unwrap()), 10e9, 0.12),
        (
            "m6_moe_100b",
            params(&models::m6_moe_100b(1).unwrap()),
            100e9,
            0.06,
        ),
    ];
    for (name, got, published, tol) in cases {
        let rel = (got - published).abs() / published;
        assert!(
            rel <= tol,
            "{name}: {got:.3e} vs published {published:.3e} (rel {rel:.2})"
        );
    }
}

#[test]
fn dense_lm_flops_follow_2n_per_token() {
    // For decoder-only and encoder-only dense transformers, forward FLOPs
    // per token ≈ 2 × parameters (attention scores add a small overhead).
    for (name, g, tokens) in [
        ("bert_large", models::bert_large(2, 128).unwrap(), 2 * 128),
        ("gpt2_xl", models::gpt2_xl(2, 128).unwrap(), 2 * 128),
    ] {
        let per_token = g.total_forward_flops() / tokens as f64;
        let two_n = 2.0 * g.total_params() as f64;
        let ratio = per_token / two_n;
        assert!(
            (0.75..1.8).contains(&ratio),
            "{name}: flops/token = {ratio:.2} × 2N"
        );
    }
}

#[test]
fn conv_net_flops_are_batch_linear() {
    for batch in [1usize, 4, 16] {
        let g = models::resnet50(batch).unwrap();
        let per_sample = g.total_forward_flops() / batch as f64;
        let base = models::resnet50(1).unwrap().total_forward_flops();
        assert!(
            (per_sample - base).abs() / base < 1e-9,
            "batch {batch}: per-sample flops drift"
        );
    }
}

#[test]
fn every_zoo_model_has_layers_and_positive_costs() {
    let graphs = vec![
        models::resnet50(2).unwrap(),
        models::imagenet_100k(2).unwrap(),
        models::bert_base(2, 64).unwrap(),
        models::gnmt(2, 30).unwrap(),
        models::t5(models::T5Config::base(), 2, 64, 64).unwrap(),
        models::vit(models::VitConfig::base16(), 2).unwrap(),
        models::gpt(models::GptConfig::gpt2_xl(), 1, 64).unwrap(),
        models::m6(models::M6Config::tiny(), 2).unwrap(),
        models::m6_moe(models::MoeConfig::tiny(), 2).unwrap(),
    ];
    for g in &graphs {
        assert!(g.len() > 3, "{}", g.name());
        assert!(g.total_forward_flops() > 0.0, "{}", g.name());
        assert!(g.total_params() > 0, "{}", g.name());
        assert!(!g.per_layer_costs().is_empty(), "{}", g.name());
        assert!(
            !g.sources().is_empty() && !g.sinks().is_empty(),
            "{}",
            g.name()
        );
        // The profile round-trips through subgraph profiling.
        let p = whale::CostProfile::from_graph(g, 2);
        assert!(p.activation_bytes_per_sample > 0.0, "{}", g.name());
        assert!(
            p.checkpoint_bytes_per_sample <= p.activation_bytes_per_sample,
            "{}",
            g.name()
        );
        assert!(p.memory_traffic_bytes_per_sample >= 0.0, "{}", g.name());
    }
}

#[test]
fn recompute_checkpoints_shrink_for_deep_models() {
    // Transformers store many tensors per layer; checkpoints keep one.
    let g = models::bert_large(4, 128).unwrap();
    let p = whale::CostProfile::from_graph(&g, 4);
    let ratio = p.checkpoint_bytes_per_sample / p.activation_bytes_per_sample;
    assert!(
        ratio < 0.25,
        "checkpointing should keep <25% of activations, got {ratio:.2}"
    );
}
