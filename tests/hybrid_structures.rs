//! Structural hybrids from the paper's figures: Fig. 6's four-TaskGraph
//! nested plan and Fig. 9's mismatched-degree bridge, planned and simulated
//! end to end.

use whale::{models, Primitive, Session};
use whale_hardware::{Collective, VirtualDevice};
use whale_ir::Annotator;
use whale_planner::DeviceAssignment;

/// Fig. 6: TG1 replica(4), TG2 replica(2), TG3 split(2), TG4 nested
/// split+replica on 4 GPUs — a 12-GPU plan mixing all strategies.
#[test]
fn fig6_four_taskgraph_hybrid() {
    let g = models::bert_base(32, 64).unwrap();
    let n = g.len();
    let q = n / 4;
    let ir = Annotator::new(g, 32)
        .annotate_range(0, q, vec![Primitive::Replica])
        .unwrap()
        .annotate_range(q, 2 * q, vec![Primitive::Replica])
        .unwrap()
        .annotate_range(2 * q, 3 * q, vec![Primitive::Split])
        .unwrap()
        .annotate_range(3 * q, n, vec![Primitive::Split, Primitive::Replica])
        .unwrap()
        .finish()
        .unwrap();
    assert_eq!(ir.num_task_graphs(), 4);

    // Fig. 6(b)'s virtual devices: 4, 2, 2, 4 GPUs.
    let vds = vec![
        VirtualDevice::new(vec![0, 1, 2, 3]).unwrap(),
        VirtualDevice::new(vec![4, 5]).unwrap(),
        VirtualDevice::new(vec![6, 7]).unwrap(),
        VirtualDevice::new(vec![8, 9, 10, 11]).unwrap(),
    ];
    let session = Session::on_cluster("3x(4xV100)")
        .unwrap()
        .devices(DeviceAssignment::PerTaskGraph(vds));
    let plan = session.plan(&ir).unwrap();

    // TG1: four replicas sharing the batch.
    assert_eq!(plan.stages[0].devices.len(), 4);
    let b1: usize = plan.stages[0]
        .devices
        .iter()
        .map(|d| d.samples_per_step)
        .sum();
    assert_eq!(b1, 32);
    // TG2: two replicas, each with double TG1's per-replica share.
    assert_eq!(plan.stages[1].devices.len(), 2);
    assert_eq!(plan.stages[1].devices[0].samples_per_step, 16);
    // TG3: two shards, each carrying the whole batch at half the FLOPs.
    assert_eq!(plan.stages[2].devices.len(), 2);
    assert_eq!(plan.stages[2].devices[0].samples_per_step, 32);
    // TG4: split(2) × replica(2) = 4 devices.
    assert_eq!(plan.stages[3].devices.len(), 4);

    // Bridges appear where degrees mismatch: TG1(4 replicas) → TG2(2).
    let has_bridge = plan
        .stages
        .iter()
        .flat_map(|s| &s.collectives_per_micro)
        .any(|c| c.label.contains("bridge"));
    assert!(has_bridge, "mismatched replica degrees need a bridge");

    // Gradient sync: TG1 over its 4 GPUs, TG2 over 2, nested TG4 per shard.
    assert!(plan.grad_syncs.iter().any(|c| c.group == vec![0, 1, 2, 3]));
    assert!(plan.grad_syncs.iter().any(|c| c.group == vec![4, 5]));

    let out = session.step_plan(&plan).unwrap();
    assert!(out.stats.step_time > 0.0);
    assert!(!out.stats.has_oom());
}

/// Fig. 9: DP(3) → DP(2) — the gathered tensor must be re-partitioned, so
/// the bridge traffic survives fusion.
#[test]
fn fig9_mismatched_dp_degrees_pay_bridge_traffic() {
    let g = models::bert_base(30, 64).unwrap();
    let n = g.len();
    let ir = Annotator::new(g, 30)
        .annotate_range(0, n / 2, vec![Primitive::Replica])
        .unwrap()
        .annotate_range(n / 2, n, vec![Primitive::Replica])
        .unwrap()
        .finish()
        .unwrap();
    let vds = vec![
        VirtualDevice::new(vec![0, 1, 2]).unwrap(),
        VirtualDevice::new(vec![3, 4]).unwrap(),
    ];
    let session = Session::on_cluster("1x(5xV100)")
        .unwrap()
        .devices(DeviceAssignment::PerTaskGraph(vds));
    let plan = session.plan(&ir).unwrap();
    // Per-replica batches: 10 each upstream, 15 each downstream.
    assert_eq!(plan.stages[0].devices[0].samples_per_step, 10);
    assert_eq!(plan.stages[1].devices[0].samples_per_step, 15);
    let bridge_bytes: u64 = plan
        .stages
        .iter()
        .flat_map(|s| &s.collectives_per_micro)
        .filter(|c| c.label.contains("bridge"))
        .map(|c| c.bytes)
        .sum();
    assert!(
        bridge_bytes > 0,
        "Fig. 9's Gather(3)+Partition(2) moves data"
    );
}

/// Same-degree, same-device replica chain fuses: no bridge traffic at all
/// (Fig. 8).
#[test]
fn fig8_same_degree_chain_is_free() {
    let g = models::bert_base(32, 64).unwrap();
    let n = g.len();
    let ir = Annotator::new(g, 32)
        .annotate_range(0, n / 2, vec![Primitive::Replica])
        .unwrap()
        .annotate_range(n / 2, n, vec![Primitive::Replica])
        .unwrap()
        .finish()
        .unwrap();
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let plan = session.plan(&ir).unwrap();
    let bridge_bytes: u64 = plan
        .stages
        .iter()
        .flat_map(|s| &s.collectives_per_micro)
        .filter(|c| c.label.contains("bridge"))
        .map(|c| c.bytes)
        .sum();
    assert_eq!(bridge_bytes, 0, "Gather(4)∘Partition(4) fuses to identity");
}

/// Nested [Replica, Split]: replica groups inside shards also plan and run.
#[test]
fn nested_replica_inside_split_plans() {
    let g = models::bert_base(32, 64).unwrap();
    let n = g.len();
    let ir = Annotator::new(g, 32)
        .annotate_range(0, n, vec![Primitive::Replica, Primitive::Split])
        .unwrap()
        .finish()
        .unwrap();
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let plan = session.plan(&ir).unwrap();
    assert_eq!(plan.stages[0].devices.len(), 4);
    // Two shards, each replicated twice: shard syncs bind replica pairs.
    assert!(plan
        .grad_syncs
        .iter()
        .all(|c| c.kind == Collective::AllReduce));
    let out = session.step_plan(&plan).unwrap();
    assert!(out.stats.throughput > 0.0);
}
