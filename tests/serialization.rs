//! Serde round-trips: plans, IR, stats, and configs survive JSON — what a
//! production deployment needs to ship plans between a planner service and
//! runtime workers.

use whale::{models, strategies, Session};
use whale_graph::TrainingConfig;
use whale_hardware::Cluster;
use whale_planner::ExecutionPlan;

#[test]
fn execution_plan_round_trips_through_json() {
    let session = Session::on_cluster("2xV100,2xP100").unwrap();
    let ir = strategies::data_parallel(models::resnet50(64).unwrap(), 64).unwrap();
    let plan = session.plan(&ir).unwrap();
    let json = serde_json::to_string(&plan).unwrap();
    let back: ExecutionPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(plan, back);
}

#[test]
fn cluster_round_trips_through_json() {
    let mut c = Cluster::parse("2x(2xV100,2xP100)").unwrap();
    c.degrade_gpu(3, 0.5).unwrap();
    let json = serde_json::to_string(&c).unwrap();
    let back: Cluster = serde_json::from_str(&json).unwrap();
    assert_eq!(c, back);
    assert_eq!(back.gpu(3).unwrap().throughput_scale, 0.5);
}

#[test]
fn whale_ir_round_trips_through_json() {
    let ir = strategies::moe_hybrid(
        models::m6_moe(models::MoeConfig::tiny(), 16).unwrap(),
        16,
    )
    .unwrap();
    let json = serde_json::to_string(&ir).unwrap();
    let back: whale::WhaleIr = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_task_graphs(), ir.num_task_graphs());
    assert_eq!(back.graph.len(), ir.graph.len());
    assert_eq!(back.default_strategy, ir.default_strategy);
    back.validate().unwrap();
}

#[test]
fn step_stats_round_trip_and_expose_fields() {
    let session = Session::on_cluster("4xV100").unwrap();
    let ir = strategies::data_parallel(models::resnet50(32).unwrap(), 32).unwrap();
    let stats = session.step(&ir).unwrap().stats;
    let json = serde_json::to_string(&stats).unwrap();
    assert!(json.contains("step_time"));
    assert!(json.contains("per_gpu"));
    let back: whale::StepStats = serde_json::from_str(&json).unwrap();
    assert_eq!(stats, back);
}

#[test]
fn training_config_json_is_stable() {
    let cfg = TrainingConfig::default();
    let json = serde_json::to_string(&cfg).unwrap();
    assert!(json.contains("\"optimizer\":\"Adam\""), "{json}");
    let back: TrainingConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}
