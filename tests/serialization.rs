//! JSON output: the dependency-free writer/parser pair in `whale_sim::json`
//! is what ships step stats out of the CLI (`--json`) and the bench harness
//! (`BENCH_planner.json`). These tests pin the field layout and verify that
//! rendered documents parse back to the same values.

use whale::{models, strategies, Session};
use whale_sim::json::{self, JsonValue};

fn sample_stats() -> whale::StepStats {
    let session = Session::on_cluster("2xV100,2xP100").unwrap();
    let ir = strategies::data_parallel(models::resnet50(64).unwrap(), 64).unwrap();
    session.step(&ir).unwrap().stats
}

#[test]
fn step_stats_json_exposes_documented_fields() {
    let stats = sample_stats();
    let text = stats.to_json().to_string_pretty();
    for key in [
        "step_time",
        "compute_makespan",
        "sync_time_total",
        "sync_time_exposed",
        "optimizer_time",
        "throughput",
        "per_gpu",
        "oom_gpus",
    ] {
        assert!(
            text.contains(&format!("\"{key}\"")),
            "missing {key} in {text}"
        );
    }
    let v = json::parse(&text).unwrap();
    assert!(v.get("step_time").as_f64().unwrap() > 0.0);
    assert_eq!(v.get("per_gpu").as_array().unwrap().len(), 4);
}

#[test]
fn step_stats_json_round_trips_values_exactly() {
    let stats = sample_stats();
    let v = json::parse(&stats.to_json().to_string_compact()).unwrap();
    assert_eq!(v.get("step_time").as_f64(), Some(stats.step_time));
    assert_eq!(v.get("throughput").as_f64(), Some(stats.throughput));
    for (got, want) in v
        .get("per_gpu")
        .as_array()
        .unwrap()
        .iter()
        .zip(&stats.per_gpu)
    {
        assert_eq!(got.get("gpu").as_f64(), Some(want.gpu as f64));
        assert_eq!(
            got.get("model").as_str(),
            Some(want.model.to_string().as_str())
        );
        assert_eq!(got.get("busy").as_f64(), Some(want.busy));
        assert_eq!(got.get("mem_bytes").as_f64(), Some(want.mem_bytes as f64));
        assert_eq!(
            got.get("mem_capacity").as_f64(),
            Some(want.mem_capacity as f64)
        );
    }
}

#[test]
fn pretty_and_compact_renderings_parse_to_the_same_value() {
    let stats = sample_stats();
    let j = stats.to_json();
    let pretty = json::parse(&j.to_string_pretty()).unwrap();
    let compact = json::parse(&j.to_string_compact()).unwrap();
    assert_eq!(pretty, compact);
    assert_eq!(pretty, j);
}

#[test]
fn gpu_memory_capacities_survive_as_exact_integers() {
    // 32 GiB = 2^35 is well inside f64's exact-integer range; the writer
    // must print it without a decimal point or exponent.
    let stats = sample_stats();
    let text = stats.to_json().to_string_compact();
    assert!(text.contains("\"mem_capacity\":34359738368"), "{text}");
    match json::parse(&text).unwrap().get("per_gpu") {
        JsonValue::Array(items) => assert!(!items.is_empty()),
        other => panic!("per_gpu should be an array, got {other:?}"),
    }
}
