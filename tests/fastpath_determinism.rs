//! Determinism guarantees of the planner/simulator fast path:
//!
//! * `simulate_step` is a pure function of its plan — repeated runs match;
//! * `auto_parallel` returns one fixed report regardless of thread count
//!   (guards the deterministic merge behind the parallel candidate search);
//! * memoization never perturbs results;
//! * gradient-sync serialization does not depend on the insertion order of
//!   equal-ready-time collectives (the explicit min-gpu-id tie-break).

use whale::{auto_parallel_opts, models, strategies, AutoOptions, Session};
use whale_graph::TrainingConfig;
use whale_hardware::Collective;
use whale_planner::{CollectiveTask, DeviceWork, ExecutionPlan, PlannedStage};

#[test]
fn simulate_step_is_repeatable() {
    let session = Session::on_cluster("8xV100+8xP100").unwrap();
    let ir = strategies::pipeline_with_dp(models::bert_base(64, 64).unwrap(), 64, 8).unwrap();
    let plan = session.plan(&ir).unwrap();
    let first = session.step_plan(&plan).unwrap();
    let second = session.step_plan(&plan).unwrap();
    assert_eq!(first, second, "simulate_step must be deterministic");
}

#[test]
fn auto_parallel_report_is_thread_count_invariant() {
    let session = Session::on_cluster("2x(4xV100)").unwrap();
    let build = || Ok(models::bert_base(128, 64).expect("build"));
    let serial = auto_parallel_opts(
        &session,
        128,
        &AutoOptions {
            search_threads: 1,
            ..AutoOptions::default()
        },
        build,
    )
    .unwrap();
    let parallel = auto_parallel_opts(
        &session,
        128,
        &AutoOptions {
            search_threads: 8,
            ..AutoOptions::default()
        },
        build,
    )
    .unwrap();
    assert_eq!(
        serial.chosen, parallel.chosen,
        "thread count changed the winning strategy"
    );
    assert_eq!(
        serial.candidates, parallel.candidates,
        "thread count changed candidate ordering or contents"
    );
    assert_eq!(serial, parallel);
}

#[test]
fn memoization_does_not_perturb_the_search() {
    // The memoized fast path and the uncached baseline must agree on every
    // candidate — caches only skip recomputation of identical terms.
    let session = Session::on_cluster("4xV100+4xP100").unwrap();
    let build = || Ok(models::bert_base(64, 64).expect("build"));
    let fast = auto_parallel_opts(
        &session,
        64,
        &AutoOptions {
            search_threads: 1,
            memoize: true,
            ..AutoOptions::default()
        },
        build,
    )
    .unwrap();
    let baseline = auto_parallel_opts(
        &session,
        64,
        &AutoOptions {
            search_threads: 1,
            memoize: false,
            ..AutoOptions::default()
        },
        build,
    )
    .unwrap();
    assert_eq!(fast, baseline);
}

/// One stage whose parameters sync in two disjoint GPU groups (the shape a
/// nested split×replica TaskGraph produces): both collectives become ready
/// at exactly the same instant — the stage's backward drain — so only the
/// explicit min-gpu-id tie-break keeps the serialization stable. Build the
/// same plan with the syncs pushed in opposite orders and demand identical
/// outcomes.
#[test]
fn grad_sync_ties_are_insertion_order_independent() {
    let sync = |group: [usize; 2]| CollectiveTask {
        kind: Collective::AllReduce,
        group: group.to_vec(),
        bytes: 256 << 20,
        label: format!("grad sync shard {}", group[0]),
        stage: Some(0),
    };
    let plan = |syncs: Vec<CollectiveTask>| ExecutionPlan {
        name: "tie-break".into(),
        global_batch: 32,
        num_micro_batches: 1,
        stages: std::sync::Arc::new(vec![PlannedStage {
            index: 0,
            devices: (0..4)
                .map(|gpu| DeviceWork {
                    gpu,
                    fw_flops_per_micro: 4e12,
                    mem_traffic_per_micro: 0.0,
                    mem_bytes: 4 << 30,
                    samples_per_step: 16,
                })
                .collect(),
            send_bytes_per_micro: 0,
            collectives_per_micro: vec![],
            param_bytes: 256 << 20,
            dp_degree: 2,
        }]),
        grad_syncs: std::sync::Arc::new(syncs),
        grad_sync_schedule: None,
        training: TrainingConfig::default(),
        efficiency: 0.45,
    };
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let forward = plan(vec![sync([0, 1]), sync([2, 3])]);
    let reversed = plan(vec![sync([2, 3]), sync([0, 1])]);
    // Both syncs genuinely tie: same stage shape → same backward-drain time.
    let a = session.step_plan(&forward).unwrap();
    let b = session.step_plan(&reversed).unwrap();
    assert_eq!(a, b, "grad-sync insertion order leaked into the outcome");
    assert!(a.stats.sync_time_total > 0.0);
}
