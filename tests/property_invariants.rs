//! Property-style tests over the core algorithms and data structures.
//!
//! Formerly written with `proptest`; the sandboxed build has no registry
//! access, so each property is now driven by a seeded in-repo PRNG
//! ([`whale_sim::SplitMix64`]) over a fixed number of cases. Seeds are
//! constants, so failures reproduce exactly.

use whale::{models, strategies, Session};
use whale_graph::{CostProfile, TrainingConfig};
use whale_hardware::{Cluster, CommModel, GpuModel};
use whale_planner::bridge::{chain_bytes, fuse, Bridge};
use whale_planner::partition::{balanced_cuts, group_costs, proportional_split};
use whale_planner::{dp_partition, ScheduleKind};
use whale_sim::{stage_order, SplitMix64};

/// `proportional_split` always preserves the total exactly and tracks the
/// weights monotonically.
#[test]
fn proportional_split_preserves_total() {
    let mut rng = SplitMix64::seed_from_u64(0xA11CE);
    for _ in 0..64 {
        let total = rng.index(10_000);
        let n = rng.range_usize(1, 16);
        let weights: Vec<f64> = (0..n).map(|_| rng.range_f64(0.01, 100.0)).collect();
        let split = proportional_split(total, &weights).unwrap();
        assert_eq!(split.iter().sum::<usize>(), total);
        assert_eq!(split.len(), weights.len());
        // A strictly larger weight never receives a smaller share ± 1 unit
        // of rounding slack.
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                if weights[i] > weights[j] * 1.01 {
                    assert!(split[i] + 1 >= split[j]);
                }
            }
        }
    }
}

/// `balanced_cuts` covers every op exactly once with non-empty groups.
#[test]
fn balanced_cuts_cover_exactly() {
    let mut rng = SplitMix64::seed_from_u64(0xB417);
    for _ in 0..64 {
        let groups = rng.range_usize(1, 8);
        let len = rng.range_usize(groups, 200);
        let costs: Vec<f64> = (0..len).map(|_| rng.range_f64(0.0, 1000.0)).collect();
        let weights = vec![1.0; groups];
        let cuts = balanced_cuts(&costs, &weights).unwrap();
        assert_eq!(cuts[0], 0);
        assert_eq!(*cuts.last().unwrap(), costs.len());
        for w in cuts.windows(2) {
            assert!(w[1] > w[0], "non-empty groups");
        }
        let total: f64 = group_costs(&costs, &cuts).iter().sum();
        assert!((total - costs.iter().sum::<f64>()).abs() < 1e-6);
    }
}

/// Bridge fusion never increases the bytes moved and is idempotent.
#[test]
fn bridge_fusion_monotone_and_idempotent() {
    let mut rng = SplitMix64::seed_from_u64(0xB21D);
    for _ in 0..64 {
        let len = rng.index(12);
        let chain: Vec<Bridge> = (0..len)
            .map(|_| match rng.index(3) {
                0 => Bridge::Partition(rng.range_usize(2, 9)),
                1 => Bridge::Gather(rng.range_usize(2, 9)),
                _ => Bridge::Identity,
            })
            .collect();
        let bytes = 1 + (rng.next_u64() & ((1 << 32) - 1));
        let fused = fuse(&chain);
        assert!(chain_bytes(&fused, bytes) <= chain_bytes(&chain, bytes));
        assert_eq!(fuse(&fused), fused.clone(), "idempotent");
        assert!(fused.iter().all(|b| b.is_communication()));
    }
}

/// Ring-AllReduce cost is monotone in bytes and never negative.
#[test]
fn allreduce_cost_monotone() {
    let mut rng = SplitMix64::seed_from_u64(0xC057);
    for _ in 0..64 {
        let gpus = rng.range_usize(2, 16);
        let bytes_a = 1 + (rng.next_u64() & ((1 << 30) - 1));
        let bytes_b = 1 + (rng.next_u64() & ((1 << 30) - 1));
        let cluster = Cluster::homogeneous(GpuModel::V100_32GB, 1, gpus);
        let comm = CommModel::new(&cluster);
        let group: Vec<usize> = (0..gpus).collect();
        let (lo, hi) = if bytes_a <= bytes_b {
            (bytes_a, bytes_b)
        } else {
            (bytes_b, bytes_a)
        };
        let t_lo = comm.allreduce(&group, lo).unwrap();
        let t_hi = comm.allreduce(&group, hi).unwrap();
        assert!(t_lo >= 0.0);
        assert!(t_hi >= t_lo);
        // Hierarchical never loses to flat by construction of best_allreduce.
        let best = comm.best_allreduce(&group, hi).unwrap();
        assert!(best <= t_hi + 1e-12);
    }
}

/// Algorithm 2 preserves the global batch for any feasible input.
#[test]
fn dp_partition_preserves_batch() {
    let g = models::resnet50(8).unwrap();
    let profile = CostProfile::from_graph(&g, 8);
    let cfg = TrainingConfig::default();
    let mut rng = SplitMix64::seed_from_u64(0xD9);
    for _ in 0..64 {
        let global = rng.range_usize(1, 2_000);
        let v100s = rng.range_usize(1, 6);
        let p100s = rng.range_usize(1, 6);
        let aware = rng.next_u64() & 1 == 1;
        let spec = format!("{v100s}xV100,{p100s}xP100");
        let cluster = Cluster::parse(&spec).unwrap();
        if let Ok(dp) = dp_partition(&profile, &cfg, cluster.gpus(), global, 1.0, aware) {
            assert_eq!(dp.batch_sizes.iter().sum::<usize>(), global);
            assert_eq!(dp.batch_sizes.len(), cluster.num_gpus());
        }
    }
}

/// Every (stage, micro, direction) task appears exactly once in any schedule
/// order.
#[test]
fn schedule_orders_are_permutations() {
    let mut rng = SplitMix64::seed_from_u64(0x5EED);
    for _ in 0..64 {
        let stages = rng.range_usize(1, 8);
        let micros = rng.range_usize(1, 24);
        let stage = rng.index(stages);
        let gpipe = rng.next_u64() & 1 == 1;
        let kind = if gpipe {
            ScheduleKind::GPipe
        } else {
            ScheduleKind::BackwardFirst
        };
        let order = stage_order(stage, stages, micros, kind);
        assert_eq!(order.len(), 2 * micros);
        let mut seen = std::collections::HashSet::new();
        for t in &order {
            assert!(seen.insert(*t), "duplicate task {t:?}");
            assert_eq!(t.stage(), stage);
            assert!(t.micro() < micros);
        }
    }
}

/// Cluster spec strings round-trip through the census.
#[test]
fn cluster_census_counts_gpus() {
    let mut rng = SplitMix64::seed_from_u64(0xCE2505);
    for _ in 0..64 {
        let nodes = rng.range_usize(1, 6);
        let v100s = rng.range_usize(1, 5);
        let p100s = rng.index(5);
        let inner = if p100s > 0 {
            format!("{v100s}xV100,{p100s}xP100")
        } else {
            format!("{v100s}xV100")
        };
        let c = Cluster::parse(&format!("{nodes}x({inner})")).unwrap();
        assert_eq!(c.num_nodes(), nodes);
        assert_eq!(c.num_gpus(), nodes * (v100s + p100s));
        let census = c.model_census();
        assert_eq!(census.get("V100-32GB").copied().unwrap_or(0), nodes * v100s);
        assert_eq!(census.get("P100-16GB").copied().unwrap_or(0), nodes * p100s);
    }
}

/// Planning + simulating pure DP succeeds for arbitrary small clusters and
/// batch sizes, is deterministic, and conserves samples. The end-to-end
/// property is slow; keep the case count small.
#[test]
fn dp_end_to_end_deterministic() {
    let mut rng = SplitMix64::seed_from_u64(0xE2E);
    for _ in 0..8 {
        let gpus = rng.range_usize(1, 9);
        let batch = 1usize << rng.range_usize(4, 9);
        let spec = format!("1x({gpus}xV100)");
        let session = Session::on_cluster(&spec).unwrap();
        let ir = strategies::data_parallel(models::resnet50(batch).unwrap(), batch).unwrap();
        let a = session.step(&ir).unwrap().stats;
        let b = session.step(&ir).unwrap().stats;
        assert_eq!(a.clone(), b, "simulation must be deterministic");
        let plan = session.plan(&ir).unwrap();
        let total: usize = plan.stages[0]
            .devices
            .iter()
            .map(|d| d.samples_per_step)
            .sum();
        assert_eq!(total, batch);
        assert!(a.step_time > 0.0);
    }
}
