//! Property-based tests over the core algorithms and data structures.

use proptest::prelude::*;
use whale::{models, strategies, Session};
use whale_graph::{CostProfile, TrainingConfig};
use whale_hardware::{Cluster, CommModel, GpuModel};
use whale_planner::bridge::{chain_bytes, fuse, Bridge};
use whale_planner::partition::{balanced_cuts, group_costs, proportional_split};
use whale_planner::{dp_partition, ScheduleKind};
use whale_sim::stage_order;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `proportional_split` always preserves the total exactly and tracks
    /// the weights monotonically.
    #[test]
    fn proportional_split_preserves_total(
        total in 0usize..10_000,
        weights in prop::collection::vec(0.01f64..100.0, 1..16),
    ) {
        let split = proportional_split(total, &weights).unwrap();
        prop_assert_eq!(split.iter().sum::<usize>(), total);
        prop_assert_eq!(split.len(), weights.len());
        // A strictly larger weight never receives a smaller share ± 1 unit
        // of rounding slack.
        for i in 0..weights.len() {
            for j in 0..weights.len() {
                if weights[i] > weights[j] * 1.01 {
                    prop_assert!(split[i] + 1 >= split[j]);
                }
            }
        }
    }

    /// `balanced_cuts` covers every op exactly once with non-empty groups.
    #[test]
    fn balanced_cuts_cover_exactly(
        costs in prop::collection::vec(0.0f64..1000.0, 1..200),
        groups in 1usize..8,
    ) {
        prop_assume!(costs.len() >= groups);
        let weights = vec![1.0; groups];
        let cuts = balanced_cuts(&costs, &weights).unwrap();
        prop_assert_eq!(cuts[0], 0);
        prop_assert_eq!(*cuts.last().unwrap(), costs.len());
        for w in cuts.windows(2) {
            prop_assert!(w[1] > w[0], "non-empty groups");
        }
        let total: f64 = group_costs(&costs, &cuts).iter().sum();
        prop_assert!((total - costs.iter().sum::<f64>()).abs() < 1e-6);
    }

    /// Bridge fusion never increases the bytes moved and is idempotent.
    #[test]
    fn bridge_fusion_monotone_and_idempotent(
        chain in prop::collection::vec(
            prop_oneof![
                (2usize..9).prop_map(Bridge::Partition),
                (2usize..9).prop_map(Bridge::Gather),
                Just(Bridge::Identity),
            ],
            0..12,
        ),
        bytes in 1u64..(1 << 32),
    ) {
        let fused = fuse(&chain);
        prop_assert!(chain_bytes(&fused, bytes) <= chain_bytes(&chain, bytes));
        prop_assert_eq!(fuse(&fused), fused.clone(), "idempotent");
        prop_assert!(fused.iter().all(|b| b.is_communication()));
    }

    /// Ring-AllReduce cost is monotone in bytes and never negative.
    #[test]
    fn allreduce_cost_monotone(
        gpus in 2usize..16,
        bytes_a in 1u64..(1 << 30),
        bytes_b in 1u64..(1 << 30),
    ) {
        let cluster = Cluster::homogeneous(GpuModel::V100_32GB, 1, gpus);
        let comm = CommModel::new(&cluster);
        let group: Vec<usize> = (0..gpus).collect();
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        let t_lo = comm.allreduce(&group, lo).unwrap();
        let t_hi = comm.allreduce(&group, hi).unwrap();
        prop_assert!(t_lo >= 0.0);
        prop_assert!(t_hi >= t_lo);
        // Hierarchical never loses to flat by construction of best_allreduce.
        let best = comm.best_allreduce(&group, hi).unwrap();
        prop_assert!(best <= t_hi + 1e-12);
    }

    /// Algorithm 2 preserves the global batch for any feasible input.
    #[test]
    fn dp_partition_preserves_batch(
        global in 1usize..2_000,
        v100s in 1usize..6,
        p100s in 1usize..6,
        aware in any::<bool>(),
    ) {
        let spec = format!("{v100s}xV100,{p100s}xP100");
        let cluster = Cluster::parse(&spec).unwrap();
        let g = models::resnet50(8).unwrap();
        let profile = CostProfile::from_graph(&g, 8);
        let cfg = TrainingConfig::default();
        if let Ok(dp) = dp_partition(&profile, &cfg, cluster.gpus(), global, 1.0, aware) {
            prop_assert_eq!(dp.batch_sizes.iter().sum::<usize>(), global);
            prop_assert_eq!(dp.batch_sizes.len(), cluster.num_gpus());
        }
    }

    /// Every (stage, micro, direction) task appears exactly once in any
    /// schedule order, and backward-first emits B_{s,0} before the warmup
    /// horizon closes.
    #[test]
    fn schedule_orders_are_permutations(
        stages in 1usize..8,
        micros in 1usize..24,
        stage in 0usize..8,
        gpipe in any::<bool>(),
    ) {
        prop_assume!(stage < stages);
        let kind = if gpipe { ScheduleKind::GPipe } else { ScheduleKind::BackwardFirst };
        let order = stage_order(stage, stages, micros, kind);
        prop_assert_eq!(order.len(), 2 * micros);
        let mut seen = std::collections::HashSet::new();
        for t in &order {
            prop_assert!(seen.insert(*t), "duplicate task {t:?}");
            prop_assert_eq!(t.stage(), stage);
            prop_assert!(t.micro() < micros);
        }
    }

    /// Cluster spec strings round-trip through the census.
    #[test]
    fn cluster_census_counts_gpus(
        nodes in 1usize..6,
        v100s in 1usize..5,
        p100s in 0usize..5,
    ) {
        let inner = if p100s > 0 {
            format!("{v100s}xV100,{p100s}xP100")
        } else {
            format!("{v100s}xV100")
        };
        let c = Cluster::parse(&format!("{nodes}x({inner})")).unwrap();
        prop_assert_eq!(c.num_nodes(), nodes);
        prop_assert_eq!(c.num_gpus(), nodes * (v100s + p100s));
        let census = c.model_census();
        prop_assert_eq!(census.get("V100-32GB").copied().unwrap_or(0), nodes * v100s);
        prop_assert_eq!(census.get("P100-16GB").copied().unwrap_or(0), nodes * p100s);
    }
}

proptest! {
    // The end-to-end property is slow; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Planning + simulating pure DP succeeds for arbitrary small clusters
    /// and batch sizes, is deterministic, and conserves samples.
    #[test]
    fn dp_end_to_end_deterministic(
        gpus in 1usize..9,
        batch_exp in 4u32..9,
    ) {
        let batch = 1usize << batch_exp;
        let spec = format!("1x({gpus}xV100)");
        let session = Session::on_cluster(&spec).unwrap();
        let ir = strategies::data_parallel(models::resnet50(batch).unwrap(), batch).unwrap();
        let a = session.step(&ir).unwrap().stats;
        let b = session.step(&ir).unwrap().stats;
        prop_assert_eq!(a.clone(), b, "simulation must be deterministic");
        let plan = session.plan(&ir).unwrap();
        let total: usize = plan.stages[0].devices.iter().map(|d| d.samples_per_step).sum();
        prop_assert_eq!(total, batch);
        prop_assert!(a.step_time > 0.0);
    }
}
