//! Simulator boundary conditions: degenerate pipelines, single micro
//! batches, co-located stages, determinism under reordering.

use whale::{models, strategies, ScheduleKind, Session};
use whale_sim::TaskKind;

#[test]
fn pipeline_with_one_micro_batch_is_sequential() {
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let ir = strategies::pipeline_only(models::bert_base(16, 64).unwrap(), 16, 1).unwrap();
    let out = session.step(&ir).unwrap();
    // With one micro batch the pipeline degenerates: 4 stages × (F + B).
    assert_eq!(out.timeline.len(), 8);
    // Fully serial: no two tasks overlap.
    for (i, a) in out.timeline.iter().enumerate() {
        for b in &out.timeline[i + 1..] {
            assert!(
                a.end <= b.start + 1e-12 || b.end <= a.start + 1e-12,
                "{:?} overlaps {:?}",
                a.kind,
                b.kind
            );
        }
    }
    assert!(out.stats.bubble_ratio() > 0.5, "mostly idle");
}

#[test]
fn two_stage_pipeline_interleaves_under_1f1b() {
    let session = Session::on_cluster("1x(2xV100)").unwrap();
    let ir = strategies::pipeline_only(models::bert_base(32, 64).unwrap(), 32, 8).unwrap();
    let out = session.step(&ir).unwrap();
    // Stage 0's F and stage 1's work overlap somewhere.
    let f0: Vec<_> = out
        .timeline
        .iter()
        .filter(|r| matches!(r.kind, TaskKind::Forward { stage: 0, .. }))
        .collect();
    let s1: Vec<_> = out
        .timeline
        .iter()
        .filter(|r| r.kind.stage() == 1)
        .collect();
    let overlaps = f0
        .iter()
        .any(|a| s1.iter().any(|b| a.start < b.end && b.start < a.end));
    assert!(overlaps, "pipelining must overlap stages");
}

#[test]
fn gpipe_and_1f1b_agree_on_total_work() {
    let mk = |schedule| {
        let session = Session::on_cluster("1x(4xV100)")
            .unwrap()
            .schedule(schedule);
        let ir = strategies::pipeline_only(models::bert_base(32, 64).unwrap(), 32, 8).unwrap();
        session.step(&ir).unwrap().stats
    };
    let a = mk(ScheduleKind::BackwardFirst);
    let b = mk(ScheduleKind::GPipe);
    // Same busy time per GPU (identical work), regardless of order.
    for (x, y) in a.per_gpu.iter().zip(&b.per_gpu) {
        assert!((x.busy - y.busy).abs() < 1e-9, "gpu {} busy differs", x.gpu);
    }
}

#[test]
fn colocated_sequential_taskgraphs_never_overlap_in_time() {
    // MoE-style: all stages share the same GPUs; makespan must be at least
    // the sum of per-stage durations.
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let g = models::m6_moe(models::MoeConfig::tiny(), 32).unwrap();
    let ir = strategies::moe_hybrid(g, 32).unwrap();
    let out = session.step(&ir).unwrap();
    let sum_durations: f64 = out.timeline.iter().map(|r| r.end - r.start).sum();
    assert!(
        out.stats.compute_makespan >= sum_durations * 0.999,
        "co-located stages must serialize: makespan {} < sum {}",
        out.stats.compute_makespan,
        sum_durations
    );
}

#[test]
fn throughput_is_batch_over_step_time() {
    let session = Session::on_cluster("1x(8xV100)").unwrap();
    let ir = strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap();
    let s = session.step(&ir).unwrap().stats;
    assert!((s.throughput - 256.0 / s.step_time).abs() < 1e-9);
}

#[test]
fn utilization_never_exceeds_one() {
    for spec in ["1xV100", "1x(4xV100)", "2x(2xP100,2xV100)"] {
        let session = Session::on_cluster(spec).unwrap();
        let ir = strategies::data_parallel(models::resnet50(64).unwrap(), 64).unwrap();
        let s = session.step(&ir).unwrap().stats;
        for g in &s.per_gpu {
            assert!(
                g.utilization <= 1.0 + 1e-9,
                "{spec}: gpu{} {}",
                g.gpu,
                g.utilization
            );
            assert!(g.utilization >= 0.0);
        }
    }
}

#[test]
fn timeline_and_chrome_trace_agree_on_task_count() {
    let session = Session::on_cluster("1x(4xV100)").unwrap();
    let ir = strategies::pipeline_only(models::bert_base(32, 64).unwrap(), 32, 6).unwrap();
    let out = session.step(&ir).unwrap();
    let trace = whale_sim::chrome_trace(&out);
    let events = trace.matches("\"ph\":\"X\"").count();
    assert_eq!(events, out.timeline.len());
    assert_eq!(events, 4 * 2 * 6);
}
