//! Backward-compat guard for the CommOpt pass: with fusion disabled (the
//! default), the pass must be a pure annotation — the attached
//! `GradSyncSchedule` is `Legacy` and the simulated step is bit-identical
//! to a plan with no schedule at all (the pre-fusion model). Any drift here
//! means the fusion machinery changed behaviour for users who never asked
//! for it.
//!
//! A second sweep checks the fused mode's structural invariants on the same
//! matrix: bucket bytes telescope exactly to each group's payload, every
//! bucket carries a selected algorithm, and ready fractions rise
//! monotonically to 1.0 along each group's bucket list.

use whale::{models, strategies, CommConfig, GradDtype, Session, SyncMode, WhaleIr};
use whale_hardware::{AllReduceAlgo, Cluster, CommModel, Interconnect};

type Case = (&'static str, fn() -> WhaleIr);

/// Small-batch slice of the model zoo: every strategy shape, sized so the
/// whole matrix stays fast in debug builds.
fn zoo() -> Vec<Case> {
    vec![
        ("resnet50/dp", || {
            strategies::data_parallel(models::resnet50(64).expect("build"), 64).expect("annotate")
        }),
        ("bert_base/dp", || {
            strategies::data_parallel(models::bert_base(32, 64).expect("build"), 32)
                .expect("annotate")
        }),
        ("bert_large/pipeline_dp", || {
            strategies::pipeline_with_dp(models::bert_large(32, 64).expect("build"), 32, 4)
                .expect("annotate")
        }),
        ("gpt2_xl/pipeline_dp", || {
            strategies::pipeline_with_dp(models::gpt2_xl(16, 64).expect("build"), 16, 4)
                .expect("annotate")
        }),
    ]
}

fn clusters() -> Vec<(&'static str, Cluster)> {
    ["8xV100", "8xV100+8xP100", "2x(8xV100)+2x(8xP100)"]
        .into_iter()
        .map(|spec| (spec, Cluster::parse(spec).expect("cluster")))
        .collect()
}

/// Fusion off ⇒ Legacy schedule, and stripping it changes nothing.
#[test]
fn legacy_schedule_is_bit_identical_to_no_schedule() {
    for (cspec, cluster) in clusters() {
        for (mname, build) in zoo() {
            let label = format!("{mname} on {cspec}");
            let ir = build();
            let session = Session::new(cluster.clone());
            let plan = session
                .plan(&ir)
                .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"));
            let sched = plan
                .grad_sync_schedule
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: no schedule attached"));
            assert_eq!(
                sched.mode,
                SyncMode::Legacy,
                "{label}: default config must produce a legacy schedule"
            );

            let mut stripped = (*plan).clone();
            stripped.grad_sync_schedule = None;
            let with = session
                .step_plan(&plan)
                .unwrap_or_else(|e| panic!("{label}: sim failed: {e}"));
            let without = session
                .step_plan(&stripped)
                .unwrap_or_else(|e| panic!("{label}: stripped sim failed: {e}"));
            assert_eq!(
                with, without,
                "{label}: legacy schedule changed the simulated step"
            );
        }
    }
}

/// Spelling out the default precision (`fp32`, no compression) must be a
/// no-op at every level: the config fingerprints identically, every bucket's
/// wire bytes equal its logical bytes, and the simulated step is
/// bit-identical to the implicit-default plan. This is the contract that
/// lets mixed precision ship without perturbing existing users.
#[test]
fn explicit_fp32_is_bit_identical_to_the_default() {
    for (cspec, cluster) in clusters() {
        for (mname, build) in zoo() {
            let label = format!("{mname} on {cspec}");
            let ir = build();
            let implicit = Session::new(cluster.clone()).comm(CommConfig::fused());
            let explicit = Session::new(cluster.clone())
                .comm(CommConfig::fused().dtype(GradDtype::Fp32).compress(1.0));
            let p1 = implicit
                .plan(&ir)
                .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"));
            let p2 = explicit
                .plan(&ir)
                .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"));
            let sched = p2
                .grad_sync_schedule
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: no schedule attached"));
            assert!(
                !sched.wire_scaled(),
                "{label}: fp32 + no compression must not scale the wire"
            );
            for b in &sched.buckets {
                assert_eq!(
                    b.wire_bytes, b.bytes,
                    "{label}: fp32 wire bytes must equal logical bytes"
                );
            }
            let s1 = implicit
                .step_plan(&p1)
                .unwrap_or_else(|e| panic!("{label}: sim failed: {e}"));
            let s2 = explicit
                .step_plan(&p2)
                .unwrap_or_else(|e| panic!("{label}: sim failed: {e}"));
            assert_eq!(
                s1, s2,
                "{label}: explicit fp32 config changed the simulated step"
            );
        }
    }
}

/// Property sweep: for every (model, cluster, fusion cap, dtype, ratio)
/// cell, the per-sync bucket wire bytes telescope *exactly* to the scaled
/// group payload — the same single-division fixed-point scaling applied to
/// `sync.bytes` — and the logical bucket boundaries are identical to the
/// fp32 packing (dtype only shrinks payloads; it never re-shapes buckets,
/// so algorithm flips are attributable to wire scaling alone).
#[test]
fn wire_bytes_telescope_to_the_scaled_payload_across_the_matrix() {
    let caps: [u64; 3] = [1 << 20, 4 << 20, 25 << 20];
    let precisions = [
        (GradDtype::Bf16, 1.0),
        (GradDtype::Fp8, 1.0),
        (GradDtype::Bf16, 0.37),
        (GradDtype::Fp32, 0.125),
    ];
    for (cspec, cluster) in clusters() {
        for (mname, build) in zoo() {
            let ir = build();
            for cap in caps {
                let base_cfg = CommConfig {
                    fusion_bytes: cap,
                    auto_algorithm: true,
                    ..CommConfig::default()
                };
                let base_plan = Session::new(cluster.clone())
                    .comm(base_cfg)
                    .plan(&ir)
                    .expect("fp32 plan");
                let base_sched = base_plan.grad_sync_schedule.as_ref().expect("schedule");
                for (dtype, ratio) in precisions {
                    let label = format!("{mname} on {cspec}, cap {cap}, {} ×{ratio}", dtype.name());
                    let cfg = base_cfg.dtype(dtype).compress(ratio);
                    let plan = Session::new(cluster.clone())
                        .comm(cfg)
                        .plan(&ir)
                        .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"));
                    let sched = plan
                        .grad_sync_schedule
                        .as_ref()
                        .unwrap_or_else(|| panic!("{label}: no schedule attached"));
                    for (i, sync) in plan.grad_syncs.iter().enumerate() {
                        let wire_total: u64 = sched.buckets_of(i).map(|b| b.wire_bytes).sum();
                        assert_eq!(
                            wire_total,
                            cfg.wire_bytes(sync.bytes),
                            "{label}: wire bytes must telescope to scale(sync.bytes)"
                        );
                        assert_eq!(
                            sched.wire_bytes_of(i),
                            Some(wire_total),
                            "{label}: wire_bytes_of must agree with the bucket sum"
                        );
                        let scaled: Vec<(u64, (usize, usize))> =
                            sched.buckets_of(i).map(|b| (b.bytes, b.layers)).collect();
                        let fp32: Vec<(u64, (usize, usize))> = base_sched
                            .buckets_of(i)
                            .map(|b| (b.bytes, b.layers))
                            .collect();
                        assert_eq!(
                            scaled, fp32,
                            "{label}: logical bucket boundaries must not move with dtype"
                        );
                    }
                }
            }
        }
    }
}

/// Dtype-driven algorithm crossover on a latency-dominated fabric: 32
/// single-GPU nodes on 10 GbE put the ring/tree break-even near 320 KB
/// (ring pays `2(n−1)` latency hops; tree pays `2⌈log₂n⌉`). A 1 MiB payload
/// rides the bandwidth-optimal ring at fp32; the same payload at fp8 is
/// 256 KiB on the wire and flips to the latency-optimal tree — both at the
/// selector and end-to-end through the planner's bucket schedule.
#[test]
fn fp8_payload_scaling_flips_ring_to_tree_on_a_latency_dominated_fabric() {
    let mut cluster = Cluster::parse("32x(1xV100)").expect("cluster");
    cluster.interconnect = Interconnect::ethernet_10g();
    let comm = CommModel::new(&cluster);
    let group: Vec<usize> = (0..cluster.num_gpus()).collect();
    let sel = comm.allreduce_selector(&group).expect("selector");

    let logical: u64 = 1 << 20;
    let fp32_wire = CommConfig::fused().wire_bytes(logical);
    let fp8_wire = CommConfig::fused().fp8().wire_bytes(logical);
    assert_eq!(fp32_wire, logical);
    assert_eq!(fp8_wire, logical / 4);
    assert_eq!(
        sel.select(fp32_wire).0,
        AllReduceAlgo::Ring,
        "1 MiB at fp32 must stay on the ring"
    );
    assert_eq!(
        sel.select(fp8_wire).0,
        AllReduceAlgo::Tree,
        "256 KiB at fp8 must flip to the tree"
    );

    // End-to-end: identical logical buckets, flipped per-bucket algorithms.
    let ir = strategies::data_parallel(models::resnet50(64).expect("build"), 64).expect("annotate");
    let fp32_cfg = CommConfig {
        fusion_bytes: 1 << 20,
        auto_algorithm: true,
        ..CommConfig::default()
    };
    let fp32_plan = Session::new(cluster.clone())
        .comm(fp32_cfg)
        .plan(&ir)
        .expect("fp32 plan");
    let fp8_plan = Session::new(cluster.clone())
        .comm(fp32_cfg.fp8())
        .plan(&ir)
        .expect("fp8 plan");
    let fp32_sched = fp32_plan.grad_sync_schedule.as_ref().expect("schedule");
    let fp8_sched = fp8_plan.grad_sync_schedule.as_ref().expect("schedule");
    assert_eq!(fp32_sched.buckets.len(), fp8_sched.buckets.len());
    let mut flips = 0;
    for (a, b) in fp32_sched.buckets.iter().zip(fp8_sched.buckets.iter()) {
        assert_eq!(a.bytes, b.bytes, "logical boundaries must match");
        if a.algo == Some(AllReduceAlgo::Ring) && b.algo == Some(AllReduceAlgo::Tree) {
            flips += 1;
        }
    }
    assert!(
        flips >= 1,
        "at least one bucket must flip ring → tree under fp8 scaling"
    );
}

/// Fusion on ⇒ buckets telescope to the exact payload, every bucket has an
/// algorithm, and ready fractions rise monotonically to 1.0 along each
/// group's bucket list (deepest layers' gradients finalize first, so each
/// later bucket waits on a larger share of the backward pass).
#[test]
fn bucketed_schedules_hold_structural_invariants() {
    for (cspec, cluster) in clusters() {
        for (mname, build) in zoo() {
            let label = format!("{mname} on {cspec}");
            let ir = build();
            let session = Session::new(cluster.clone()).comm(CommConfig::fused());
            let plan = session
                .plan(&ir)
                .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"));
            let sched = plan
                .grad_sync_schedule
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: no schedule attached"));
            assert_eq!(sched.mode, SyncMode::Bucketed, "{label}");

            for (i, sync) in plan.grad_syncs.iter().enumerate() {
                let total: u64 = sched.buckets_of(i).map(|b| b.bytes).sum();
                assert_eq!(total, sync.bytes, "{label}: bucket bytes must telescope");
                assert!(
                    sched.buckets_of(i).all(|b| b.algo.is_some()),
                    "{label}: every bucket needs a selected algorithm"
                );
                let fracs: Vec<f64> = sched.buckets_of(i).map(|b| b.ready_frac).collect();
                assert!(
                    fracs.windows(2).all(|w| w[0] <= w[1]),
                    "{label}: ready fractions must be monotone non-decreasing, \
                     got {fracs:?}"
                );
                assert_eq!(
                    fracs.last().copied(),
                    Some(1.0),
                    "{label}: last bucket must wait for the full backward pass"
                );
            }
        }
    }
}
