//! Backward-compat guard for the CommOpt pass: with fusion disabled (the
//! default), the pass must be a pure annotation — the attached
//! `GradSyncSchedule` is `Legacy` and the simulated step is bit-identical
//! to a plan with no schedule at all (the pre-fusion model). Any drift here
//! means the fusion machinery changed behaviour for users who never asked
//! for it.
//!
//! A second sweep checks the fused mode's structural invariants on the same
//! matrix: bucket bytes telescope exactly to each group's payload, every
//! bucket carries a selected algorithm, and ready fractions rise
//! monotonically to 1.0 along each group's bucket list.

use whale::{models, strategies, CommConfig, Session, SyncMode, WhaleIr};
use whale_hardware::Cluster;

type Case = (&'static str, fn() -> WhaleIr);

/// Small-batch slice of the model zoo: every strategy shape, sized so the
/// whole matrix stays fast in debug builds.
fn zoo() -> Vec<Case> {
    vec![
        ("resnet50/dp", || {
            strategies::data_parallel(models::resnet50(64).expect("build"), 64).expect("annotate")
        }),
        ("bert_base/dp", || {
            strategies::data_parallel(models::bert_base(32, 64).expect("build"), 32)
                .expect("annotate")
        }),
        ("bert_large/pipeline_dp", || {
            strategies::pipeline_with_dp(models::bert_large(32, 64).expect("build"), 32, 4)
                .expect("annotate")
        }),
        ("gpt2_xl/pipeline_dp", || {
            strategies::pipeline_with_dp(models::gpt2_xl(16, 64).expect("build"), 16, 4)
                .expect("annotate")
        }),
    ]
}

fn clusters() -> Vec<(&'static str, Cluster)> {
    ["8xV100", "8xV100+8xP100", "2x(8xV100)+2x(8xP100)"]
        .into_iter()
        .map(|spec| (spec, Cluster::parse(spec).expect("cluster")))
        .collect()
}

/// Fusion off ⇒ Legacy schedule, and stripping it changes nothing.
#[test]
fn legacy_schedule_is_bit_identical_to_no_schedule() {
    for (cspec, cluster) in clusters() {
        for (mname, build) in zoo() {
            let label = format!("{mname} on {cspec}");
            let ir = build();
            let session = Session::new(cluster.clone());
            let plan = session
                .plan(&ir)
                .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"));
            let sched = plan
                .grad_sync_schedule
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: no schedule attached"));
            assert_eq!(
                sched.mode,
                SyncMode::Legacy,
                "{label}: default config must produce a legacy schedule"
            );

            let mut stripped = (*plan).clone();
            stripped.grad_sync_schedule = None;
            let with = session
                .step_plan(&plan)
                .unwrap_or_else(|e| panic!("{label}: sim failed: {e}"));
            let without = session
                .step_plan(&stripped)
                .unwrap_or_else(|e| panic!("{label}: stripped sim failed: {e}"));
            assert_eq!(
                with, without,
                "{label}: legacy schedule changed the simulated step"
            );
        }
    }
}

/// Fusion on ⇒ buckets telescope to the exact payload, every bucket has an
/// algorithm, and ready fractions rise monotonically to 1.0 along each
/// group's bucket list (deepest layers' gradients finalize first, so each
/// later bucket waits on a larger share of the backward pass).
#[test]
fn bucketed_schedules_hold_structural_invariants() {
    for (cspec, cluster) in clusters() {
        for (mname, build) in zoo() {
            let label = format!("{mname} on {cspec}");
            let ir = build();
            let session = Session::new(cluster.clone()).comm(CommConfig::fused());
            let plan = session
                .plan(&ir)
                .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"));
            let sched = plan
                .grad_sync_schedule
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: no schedule attached"));
            assert_eq!(sched.mode, SyncMode::Bucketed, "{label}");

            for (i, sync) in plan.grad_syncs.iter().enumerate() {
                let total: u64 = sched.buckets_of(i).map(|b| b.bytes).sum();
                assert_eq!(total, sync.bytes, "{label}: bucket bytes must telescope");
                assert!(
                    sched.buckets_of(i).all(|b| b.algo.is_some()),
                    "{label}: every bucket needs a selected algorithm"
                );
                let fracs: Vec<f64> = sched.buckets_of(i).map(|b| b.ready_frac).collect();
                assert!(
                    fracs.windows(2).all(|w| w[0] <= w[1]),
                    "{label}: ready fractions must be monotone non-decreasing, \
                     got {fracs:?}"
                );
                assert_eq!(
                    fracs.last().copied(),
                    Some(1.0),
                    "{label}: last bucket must wait for the full backward pass"
                );
            }
        }
    }
}
