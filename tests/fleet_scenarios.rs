//! Fleet simulator scenarios: multi-tenant serving, graceful degradation,
//! and the shared compile service across whole fleets.

use std::sync::Arc;

use whale_hardware::Cluster;
use whale_planner::PlanService;
use whale_sim::{default_templates, FaultModel, FleetConfig, FleetSim, RecoveryPolicy, SimError};

fn pool() -> Cluster {
    Cluster::parse("2x(4xV100)+2x(4xP100)").unwrap()
}

fn cfg() -> FleetConfig {
    FleetConfig {
        horizon_s: 8000.0,
        arrival_mean_s: 300.0,
        faults: FaultModel {
            mtbf_samples: 800.0,
            mttr_samples: 500.0,
            seed: 1,
        },
        ..FleetConfig::default()
    }
}

#[test]
fn two_fleets_share_one_plan_service() {
    // Two fleets over identical pools compile through one service: the
    // second rides the first's cache, and the shared counters stay
    // consistent across both runs.
    let service = Arc::new(PlanService::default());
    let a = FleetSim::with_service(pool(), default_templates(), cfg(), Arc::clone(&service))
        .unwrap()
        .run()
        .unwrap();
    let after_first = service.stats();
    let b = FleetSim::with_service(pool(), default_templates(), cfg(), Arc::clone(&service))
        .unwrap()
        .run()
        .unwrap();
    let after_second = service.stats();

    // Same workload, same churn, shared cache: outcomes are identical.
    assert_eq!(a.stats.goodput, b.stats.goodput);
    assert_eq!(a.jobs, b.jobs);
    // The warm second fleet never recompiles what the first compiled: no
    // new misses beyond replan-layer traffic, and strictly more hits.
    assert!(after_second.hits > after_first.hits, "warm fleet must hit");
    assert_eq!(
        after_second.requests(),
        after_second.hits
            + after_second.misses
            + after_second.partial_hits
            + after_second.coalesced,
        "shared-service accounting must balance across fleets"
    );
}

#[test]
fn overload_queues_and_rejects_gracefully_instead_of_failing() {
    // A 4-GPU pool flooded with arrivals: the fleet must degrade by
    // queueing and (past the queue bound) rejecting — never by failing
    // admitted jobs.
    let small = Cluster::parse("1x(4xV100)").unwrap();
    let report = FleetSim::new(
        small,
        default_templates(),
        FleetConfig {
            horizon_s: 6000.0,
            arrival_mean_s: 60.0,
            max_queue: 4,
            faults: FaultModel {
                mtbf_samples: 1e12, // isolate overload from churn
                mttr_samples: 1.0,
                seed: 1,
            },
            ..FleetConfig::default()
        },
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(
        report.stats.failed, 0,
        "overload must not fail admitted jobs"
    );
    assert!(report.stats.rejected > 0, "queue bound must engage");
    assert!(report.stats.queued_at_end + report.stats.completed + report.stats.running_at_end > 0);
    assert!(
        report.stats.mean_queue_wait_s > 0.0,
        "jobs must have waited"
    );
    // Every rejection is accounted on a specific job row.
    let rejected = report
        .jobs
        .iter()
        .filter(|j| {
            j.error
                .as_deref()
                .is_some_and(|e| e.starts_with("rejected"))
        })
        .count() as u64;
    assert_eq!(rejected, report.stats.rejected);
}

#[test]
fn elastic_outperforms_kill_and_requeue_on_shared_churn() {
    let elastic = FleetSim::new(pool(), default_templates(), cfg())
        .unwrap()
        .run()
        .unwrap();
    let baseline = FleetSim::new(
        pool(),
        default_templates(),
        FleetConfig {
            elastic: false,
            ..cfg()
        },
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(elastic.stats.goodput >= baseline.stats.goodput);
    assert_eq!(elastic.stats.kills, 0, "elastic never kill-and-requeues");
    assert!(
        elastic.stats.samples_lost <= baseline.stats.samples_lost,
        "checkpoint rollback must lose no more than restart-from-zero"
    );
}

#[test]
fn capacity_floor_surfaces_insufficient_capacity() {
    // With the floor set just under full capacity, the first real
    // degradation drops the pool below it and the run must stop with
    // InsufficientCapacity — not a panic, not a silent wedge.
    let err = FleetSim::new(
        pool(),
        default_templates(),
        FleetConfig {
            policy: RecoveryPolicy {
                min_capacity: 0.999,
                ..RecoveryPolicy::default()
            },
            faults: FaultModel {
                mtbf_samples: 200.0, // churn strikes early and often
                mttr_samples: 100.0,
                seed: 3,
            },
            ..cfg()
        },
    )
    .unwrap()
    .run()
    .unwrap_err();
    match err {
        SimError::InsufficientCapacity {
            available,
            required,
        } => {
            assert!(available < required);
            assert_eq!(required, 0.999);
        }
        other => panic!("expected InsufficientCapacity, got {other}"),
    }
}

#[test]
fn fleet_recovery_quantiles_are_populated_under_churn() {
    let report = FleetSim::new(pool(), default_templates(), cfg())
        .unwrap()
        .run()
        .unwrap();
    assert!(
        !report.stats.recovery.faults.is_empty(),
        "scenario must actually exercise recovery"
    );
    let p50 = report.stats.recovery.ttr_p50().unwrap();
    let p99 = report.stats.recovery.ttr_p99().unwrap();
    assert!(p50 > 0.0 && p50 <= p99, "p50 {p50} vs p99 {p99}");
    assert!(
        p99 < report.stats.horizon_s,
        "recovery must be bounded well inside the horizon"
    );
    // The quantiles surface in the JSON artifact too.
    let json = report.stats.to_json().to_string_pretty();
    assert!(json.contains("ttr_p99_s"));
}
