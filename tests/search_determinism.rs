//! Guarantees of the branch-and-bound auto-parallel search
//! (`whale::auto_parallel_search`):
//!
//! * the full [`whale::AutoReport`] — winner, candidate order, reject
//!   reasons, pruning counters — is invariant under `search_threads`
//!   (serial, fixed pool, all cores) across models and clusters;
//! * the bounds are *admissible*: disabling pruning (`exhaustive`) and
//!   simulating every leaf never finds a strategy with higher simulated
//!   throughput than the pruned search's winner;
//! * the widened space never loses to the narrow enumeration it replaces.

use whale::{auto_parallel, auto_parallel_search, models, RejectReason, SearchOptions, Session};
use whale_graph::Graph;

fn opts(threads: usize) -> SearchOptions {
    SearchOptions {
        search_threads: threads,
        ..SearchOptions::default()
    }
}

#[test]
fn report_is_thread_count_invariant_across_zoo_and_clusters() {
    type Build = fn() -> whale::Result<Graph>;
    let builds: [(&str, usize, Build); 3] = [
        ("resnet50", 64, || Ok(models::resnet50(64).expect("build"))),
        ("bert-base", 128, || {
            Ok(models::bert_base(128, 64).expect("build"))
        }),
        ("m6-moe", 64, || {
            Ok(models::m6_moe(models::MoeConfig::tiny(), 64).expect("build"))
        }),
    ];
    for cluster in ["2x(4xV100)", "4xV100,4xP100"] {
        let session = Session::on_cluster(cluster).unwrap();
        for (name, batch, build) in builds {
            let serial = auto_parallel_search(&session, batch, &opts(1), build).unwrap();
            let pool = auto_parallel_search(&session, batch, &opts(4), build).unwrap();
            let auto = auto_parallel_search(&session, batch, &opts(0), build).unwrap();
            assert_eq!(
                serial, pool,
                "{name} on {cluster}: 1 vs 4 threads changed the report"
            );
            assert_eq!(
                serial, auto,
                "{name} on {cluster}: 1 vs all threads changed the report"
            );
        }
    }
}

#[test]
fn pruning_is_admissible_on_an_exhaustively_enumerable_space() {
    // Small space (4 GPUs, batch 16 clips the micro grid) so exhaustive
    // evaluation stays cheap, heterogeneous so bounds must respect per-GPU
    // rates. If any bound were optimistic in the wrong direction, the
    // exhaustive sweep would surface a pruned leaf that out-simulates the
    // pruned search's winner.
    let session = Session::on_cluster("2xV100,2xP100").unwrap();
    let build = || Ok(models::bert_base(16, 64).expect("build"));
    let pruned = auto_parallel_search(&session, 16, &opts(1), build).unwrap();
    let exhaustive = auto_parallel_search(
        &session,
        16,
        &SearchOptions {
            search_threads: 1,
            exhaustive: true,
            ..SearchOptions::default()
        },
        build,
    )
    .unwrap();
    let st = exhaustive.search.unwrap();
    assert_eq!(st.nodes_bounded, 0, "exhaustive mode must not prune");
    assert_eq!(st.nodes_pruned_planned, 0, "exhaustive mode must not prune");
    // Admissibility: nothing the pruned search discarded beats its winner.
    for c in &exhaustive.candidates {
        if let Some(s) = &c.stats {
            assert!(
                s.throughput <= pruned.stats.throughput + 1e-9,
                "pruned search missed {} at {:.1} samples/s (kept {} at {:.1})",
                c.name,
                s.throughput,
                pruned.chosen,
                pruned.stats.throughput
            );
        }
    }
    assert_eq!(pruned.chosen, exhaustive.chosen);
    assert_eq!(pruned.stats, exhaustive.stats);
}

#[test]
fn search_never_loses_to_the_narrow_enumeration() {
    type Build = fn() -> whale::Result<Graph>;
    let builds: [(&str, usize, Build); 2] = [
        ("bert-base", 128, || {
            Ok(models::bert_base(128, 64).expect("build"))
        }),
        ("m6-moe", 64, || {
            Ok(models::m6_moe(models::MoeConfig::tiny(), 64).expect("build"))
        }),
    ];
    for cluster in ["1x(8xV100)", "2x(8xV100)+2x(8xP100)"] {
        let session = Session::on_cluster(cluster).unwrap();
        for (name, batch, build) in builds {
            let narrow = auto_parallel(&session, batch, build).unwrap();
            let wide = auto_parallel_search(&session, batch, &opts(0), build).unwrap();
            assert!(
                wide.stats.throughput >= narrow.stats.throughput - 1e-9,
                "{name} on {cluster}: search {:.1} < enumeration {:.1} samples/s",
                wide.stats.throughput,
                narrow.stats.throughput
            );
        }
    }
}

#[test]
fn pruned_rejects_carry_bound_and_incumbent() {
    let session = Session::on_cluster("2x(4xV100)").unwrap();
    let report = auto_parallel_search(&session, 128, &opts(1), || {
        Ok(models::bert_base(128, 64).expect("build"))
    })
    .unwrap();
    let mut saw_pruned = false;
    for c in &report.candidates {
        if let Some(RejectReason::Pruned { bound, incumbent }) = &c.rejected {
            saw_pruned = true;
            assert!(bound.is_finite() && *bound > 0.0);
            assert!(incumbent.is_finite() && *incumbent > 0.0);
            // The prune was justified: the bound's throughput cannot beat
            // the incumbent the search held at that moment.
            assert!(
                bound >= incumbent,
                "pruned {} with bound {bound} < incumbent {incumbent}",
                c.name
            );
        }
    }
    assert!(saw_pruned, "expected at least one pruned leaf");
    let st = report.search.unwrap();
    assert!(
        st.bounded_fraction() >= 0.5,
        "bounds too weak: only {:.0}% of nodes skipped simulation",
        st.bounded_fraction() * 100.0
    );
}
