//! Consecutive delta replans on one session, and the determinism /
//! verification guarantees of the fault-injection stack:
//!
//! * a degrade → restore → remove sequence drives the plan cache through a
//!   partial hit, a pure hit (restoring returns to an already-cached
//!   state), and a structural miss — the pass counters prove which compile
//!   work actually ran, and the final plan equals a cold compile of the
//!   final cluster;
//! * the same fault seed yields a bit-identical `FaultTrace` AND a
//!   bit-identical `RecoveryStats`;
//! * every recovery a generated trace induces passes `check_replan`.

use whale::{models, strategies, Cluster, ClusterDelta, RecoveryPolicy, Session, SimConfig};
use whale_sim::{check_replan, FaultModel, FaultTrace, LossModel};

fn dp_ir(batch: usize) -> whale::WhaleIr {
    strategies::data_parallel(models::resnet50(batch).unwrap(), batch).unwrap()
}

#[test]
fn consecutive_deltas_reuse_the_cache_as_promised() {
    let ir = dp_ir(64);
    let mut session = Session::on_cluster("4xV100").unwrap();

    // Cold plan: one miss, all six passes.
    session.plan(&ir).unwrap();
    let s0 = session.cache_stats().unwrap();
    assert_eq!((s0.misses, s0.passes_run), (1, 6));

    // Degrade: a rate delta invalidates only Balance + Schedule.
    session
        .replan(&ir, ClusterDelta::GpuDegraded { id: 0, scale: 0.5 })
        .unwrap();
    let s1 = session.cache_stats().unwrap();
    assert_eq!(s1.partial_hits, s0.partial_hits + 1);
    assert_eq!(
        s1.passes_run,
        s0.passes_run + 3,
        "Balance + Schedule + CommOpt only"
    );

    // Restore: the post-delta cluster is the *original* cluster, whose plan
    // is already cached — a pure hit, zero passes.
    session
        .replan(&ir, ClusterDelta::GpuRestored { id: 0 })
        .unwrap();
    let s2 = session.cache_stats().unwrap();
    assert_eq!(s2.hits, s1.hits + 1, "restore returns to a cached state");
    assert_eq!(s2.passes_run, s1.passes_run, "no compile work at all");

    // Remove: structural, the whole pipeline re-runs as a miss.
    let replanned = session
        .replan(&ir, ClusterDelta::GpuRemoved { id: 3 })
        .unwrap();
    let s3 = session.cache_stats().unwrap();
    assert_eq!(s3.misses, s2.misses + 1);
    assert_eq!(s3.passes_run, s2.passes_run + 6, "full pipeline");

    // After the whole sequence the session's plan is exactly what a cold
    // compile of the final cluster produces.
    let cold = whale_planner::plan(&ir, session.cluster(), session.planner_config()).unwrap();
    assert_eq!(*replanned, cold, "delta path diverged from a cold compile");
    assert_eq!(session.cluster().num_gpus(), 3);
}

#[test]
fn unseen_intermediate_states_still_take_the_fast_path() {
    let ir = dp_ir(64);
    let mut session = Session::on_cluster("4xV100").unwrap();
    session.plan(&ir).unwrap();

    // degrade(0) → degrade(1) → restore(0): the final state (only GPU 1
    // degraded) was never planned before, so it cannot be a pure hit — but
    // each step still reuses the structural prefix.
    let before = session.cache_stats().unwrap();
    session
        .replan(&ir, ClusterDelta::GpuDegraded { id: 0, scale: 0.5 })
        .unwrap();
    session
        .replan(&ir, ClusterDelta::GpuDegraded { id: 1, scale: 0.7 })
        .unwrap();
    let replanned = session
        .replan(&ir, ClusterDelta::GpuRestored { id: 0 })
        .unwrap();
    let after = session.cache_stats().unwrap();
    assert_eq!(after.partial_hits, before.partial_hits + 3);
    assert_eq!(after.passes_run, before.passes_run + 9, "3 passes each");

    let cold = whale_planner::plan(&ir, session.cluster(), session.planner_config()).unwrap();
    assert_eq!(*replanned, cold);
    assert_eq!(session.cluster().gpu(0).unwrap().throughput_scale, 1.0);
    assert_eq!(session.cluster().gpu(1).unwrap().throughput_scale, 0.7);
}

#[test]
fn fault_traces_and_recovery_stats_are_seed_deterministic() {
    let ir = dp_ir(128);
    let cluster = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
    let model = FaultModel {
        mtbf_samples: 1e5,
        mttr_samples: 4e4,
        seed: 2024,
    };
    let loss = LossModel::for_params(25e6);
    let policy = RecoveryPolicy::default();

    let trace_a = FaultTrace::generate(&cluster, &model, 1e6);
    let trace_b = FaultTrace::generate(&cluster, &model, 1e6);
    assert_eq!(
        trace_a, trace_b,
        "same seed must give a bit-identical trace"
    );
    assert!(!trace_a.events.is_empty());

    let run = |trace: &FaultTrace| {
        let mut s = Session::new(cluster.clone());
        s.train_resilient(&ir, &loss, 8e5, trace, &policy).unwrap()
    };
    let a = run(&trace_a);
    let b = run(&trace_b);
    assert_eq!(a.stats, b.stats, "same trace must give identical stats");
    assert_eq!(a.points, b.points);
    assert!(!a.stats.faults.is_empty(), "the trace must actually strike");

    // A different seed diverges.
    let other = FaultTrace::generate(
        &cluster,
        &FaultModel {
            seed: 2025,
            ..model
        },
        1e6,
    );
    assert_ne!(trace_a, other);
}

#[test]
fn every_injected_recovery_passes_check_replan() {
    let ir = dp_ir(128);
    let cluster = Cluster::parse("2x(8xV100)+2x(8xP100)").unwrap();
    let trace = FaultTrace::generate(
        &cluster,
        &FaultModel {
            mtbf_samples: 8e4,
            mttr_samples: 3e4,
            seed: 7,
        },
        1e6,
    );
    assert!(trace.len() >= 5, "want a rich trace, got {}", trace.len());

    let mut session = Session::new(cluster);
    let mut old = session.plan(&ir).unwrap();
    for event in &trace.events {
        let new = session.replan(&ir, event.delta).unwrap();
        // Structural deltas legitimately change stage shapes; they are
        // verified for executability on the new topology. Rate deltas must
        // preserve the old plan's semantics exactly.
        let reference = if event.delta.is_structural() {
            &new
        } else {
            &old
        };
        let report = check_replan(reference, &new, session.cluster(), &SimConfig::default());
        assert!(
            report.is_consistent(),
            "{:?} at {:.0} failed verification:\n{report}",
            event.kind,
            event.at_samples
        );
        old = new;
    }
}
