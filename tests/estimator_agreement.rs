//! The analytic estimator must *rank* strategies like the full simulator —
//! that is its job inside `auto_parallel`. Absolute agreement within a small
//! factor; ordering agreement always.

use whale::{models, strategies, ScheduleKind, Session};
use whale_planner::{estimate_step, estimate_step_lower_bound, pipeline_leaf_bound, EstimateCache};

fn pair(spec: &str, ir: &whale::WhaleIr) -> (f64, f64) {
    let session = Session::on_cluster(spec).unwrap();
    let plan = session.plan(ir).unwrap();
    let est = estimate_step(&plan, session.cluster()).unwrap().step_time;
    let sim = session.step_plan(&plan).unwrap().stats.step_time;
    (est, sim)
}

#[test]
fn estimator_tracks_simulator_within_2x() {
    let cases: Vec<(&str, whale::WhaleIr)> = vec![
        (
            "1x(8xV100)",
            strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap(),
        ),
        (
            "8xV100+8xP100",
            strategies::data_parallel(models::bert_large(256, 128).unwrap(), 256).unwrap(),
        ),
        (
            "1x(8xV100)",
            strategies::pipeline_only(models::bert_large(128, 128).unwrap(), 128, 16).unwrap(),
        ),
        (
            "1x(4xV100)",
            strategies::moe_hybrid(models::m6_moe(models::MoeConfig::tiny(), 64).unwrap(), 64)
                .unwrap(),
        ),
    ];
    for (spec, ir) in &cases {
        let (est, sim) = pair(spec, ir);
        let ratio = est / sim;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{spec}/{}: estimate {est:.4}s vs simulated {sim:.4}s (ratio {ratio:.2})",
            ir.graph.name()
        );
    }
}

#[test]
fn estimator_preserves_strategy_ordering() {
    // DP vs pipeline for a model that fits everywhere: both must agree DP is
    // faster.
    let spec = "1x(8xV100)";
    let dp = strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap();
    let pipe = strategies::pipeline_only(models::resnet50(256).unwrap(), 256, 8).unwrap();
    let (est_dp, sim_dp) = pair(spec, &dp);
    let (est_pipe, sim_pipe) = pair(spec, &pipe);
    assert!(sim_dp < sim_pipe, "simulator: DP wins");
    assert!(est_dp < est_pipe, "estimator must agree");
}

#[test]
fn lower_bounds_never_exceed_simulated_step() {
    // Both pruning bounds of the branch-and-bound search must be
    // admissible: the post-plan bound (priced from the assembled plan) and
    // the partition-seeded pre-plan leaf bound (priced from the exact cuts
    // and profiles the plan would use) may never exceed the simulated step
    // time, or the search could prune the true winner. Heterogeneous
    // cluster so the bounds must respect per-GPU rates; sweep replica
    // degree, micro-batch count, and schedule.
    let batch = 64;
    let session = Session::on_cluster("4xV100,4xP100").unwrap();
    for replicas in [1usize, 2] {
        for micro in [2usize, 4, 8] {
            for schedule in [ScheduleKind::BackwardFirst, ScheduleKind::GPipe] {
                let graph = models::bert_base(batch, 64).unwrap();
                let leaf_lb = pipeline_leaf_bound(
                    &graph,
                    session.cluster(),
                    session.planner_config(),
                    replicas,
                    micro,
                    schedule == ScheduleKind::GPipe,
                    batch,
                )
                .unwrap();
                let ir = if replicas > 1 {
                    strategies::pipeline_with_dp(graph, batch, micro).unwrap()
                } else {
                    strategies::pipeline_only(graph, batch, micro).unwrap()
                };
                let mut s = session.clone().schedule(schedule);
                if replicas > 1 {
                    s = s.outer_dp(replicas);
                }
                let plan = s.plan(&ir).unwrap();
                let sim = s.step_plan(&plan).unwrap().stats.step_time;
                let mut cache = EstimateCache::new(s.cluster());
                let post_lb = estimate_step_lower_bound(&plan, &mut cache).unwrap();
                let tag = format!("r={replicas} micro={micro} {schedule:?}");
                assert!(
                    post_lb <= sim * (1.0 + 1e-9),
                    "{tag}: post-plan bound {post_lb:.6}s exceeds simulated {sim:.6}s"
                );
                if let Some(lb) = leaf_lb {
                    assert!(
                        lb <= sim * (1.0 + 1e-9),
                        "{tag}: leaf bound {lb:.6}s exceeds simulated {sim:.6}s"
                    );
                }
            }
        }
    }
}

#[test]
fn estimator_preserves_hardware_aware_ordering() {
    let ir = strategies::data_parallel(models::resnet50(512).unwrap(), 512).unwrap();
    let mk = |aware: bool| {
        let s = Session::on_cluster("8xV100+8xP100")
            .unwrap()
            .hardware_aware(aware);
        let p = s.plan(&ir).unwrap();
        estimate_step(&p, s.cluster()).unwrap().step_time
    };
    assert!(
        mk(true) < mk(false),
        "estimator sees the Fig. 17 speedup too"
    );
}
