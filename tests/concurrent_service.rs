//! Stress test for the concurrent plan service: 16 threads hammer one
//! `Session` clone-family with mixed hit/miss/replan traffic and the
//! counters must balance to the request.
//!
//! The invariants under test:
//!
//! * **accounting** — every lookup lands in exactly one of
//!   `hits`/`misses`/`partial_hits`/`coalesced`, so `CacheStats::requests`
//!   equals the number of `plan`/`replan` calls issued across the family;
//! * **single-flight** — each unique `PlanKey` is compiled exactly once no
//!   matter how many threads race for it (`misses` = unique cold keys,
//!   `partial_hits` = unique post-delta keys, and `passes_run` proves no
//!   redundant pass ever ran);
//! * **zero-copy sharing** — every thread's plan for a key is the *same
//!   allocation* (`Arc::ptr_eq`), not an equal copy;
//! * **bit-identity** — every served plan equals a serial cold compile of
//!   the same inputs, so concurrency changes nothing about plan content.

use std::sync::{Arc, Barrier};

use whale::{models, strategies, ClusterDelta, ExecutionPlan, Session};

const THREADS: usize = 16;
/// Hot repeats per thread per key in the plan phase.
const REPEATS: usize = 8;
const DELTA: ClusterDelta = ClusterDelta::GpuDegraded { id: 0, scale: 0.5 };

fn zoo() -> Vec<whale::WhaleIr> {
    [16, 32, 64]
        .into_iter()
        .map(|b| strategies::data_parallel(models::resnet50(b).unwrap(), b).unwrap())
        .collect()
}

#[test]
fn sixteen_threads_one_clone_family_counters_balance() {
    let irs = zoo();
    let n_keys = irs.len();
    let session = Session::on_cluster("4xV100+4xP100").unwrap();

    // Serial cold references, compiled outside the session so they share
    // nothing with the service under test.
    let cold: Vec<ExecutionPlan> = irs
        .iter()
        .map(|ir| whale::planner::plan(ir, session.cluster(), session.planner_config()).unwrap())
        .collect();
    let mut degraded = session.cluster().clone();
    degraded.apply_delta(DELTA).unwrap();
    let cold_degraded: Vec<ExecutionPlan> = irs
        .iter()
        .map(|ir| whale::planner::plan(ir, &degraded, session.planner_config()).unwrap())
        .collect();

    // Phase A+B per thread: hammer the shared service with repeated plans
    // (hit/miss/coalesce traffic), then replan every model through the same
    // delta (partial-hit traffic). Each worker owns a session *clone*; all
    // clones share one PlanService.
    let barrier = Barrier::new(THREADS);
    let plans: Vec<Vec<(Arc<ExecutionPlan>, Arc<ExecutionPlan>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let family = &session;
                let irs = &irs;
                let cold = &cold;
                let barrier = &barrier;
                scope.spawn(move || {
                    let worker = family.clone();
                    barrier.wait();
                    for round in 0..REPEATS {
                        for k in 0..irs.len() {
                            // Stagger so threads race for different keys.
                            let i = (k + t + round) % irs.len();
                            let p = worker.plan(&irs[i]).unwrap();
                            assert_eq!(*p, cold[i], "thread {t}: plan != serial cold compile");
                        }
                    }
                    let mut served = Vec::with_capacity(irs.len());
                    for ir in irs.iter() {
                        let planned = worker.plan(ir).unwrap();
                        // Each replan starts from its own pre-delta clone
                        // (replanning mutates the clone's cluster, and the
                        // whole point is that all clones share one service).
                        let mut replanner = family.clone();
                        let replanned = replanner.replan(ir, DELTA).unwrap();
                        assert_eq!(replanner.cluster().gpu(0).unwrap().throughput_scale, 0.5);
                        served.push((planned, replanned));
                    }
                    served
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Accounting: every call issued by every thread is in exactly one
    // counter. Per thread: REPEATS*n_keys + n_keys plans + n_keys replans.
    let stats = session.cache_stats().unwrap();
    let issued = (THREADS * (REPEATS * n_keys + 2 * n_keys)) as u64;
    assert_eq!(
        stats.hits + stats.misses + stats.partial_hits + stats.coalesced,
        issued,
        "hits + misses + partials + coalesced must sum to requests: {stats}"
    );
    assert_eq!(stats.requests(), issued);

    // Single-flight: each unique pre-delta key compiled exactly once
    // (6 passes), each unique post-delta key replanned exactly once
    // (Balance + Schedule + CommOpt suffix = 3 passes). A worker replanning
    // after the leader hits the cached post-delta entry instead.
    assert_eq!(stats.misses, n_keys as u64, "one compile per unique key");
    assert_eq!(
        stats.partial_hits, n_keys as u64,
        "one suffix replan per unique post-delta key"
    );
    assert_eq!(
        stats.passes_run,
        (6 * n_keys + 3 * n_keys) as u64,
        "no redundant compile pass may ever run"
    );

    for thread_plans in &plans {
        for (i, (planned, replanned)) in thread_plans.iter().enumerate() {
            // Zero-copy: all threads share the leader's allocation.
            let (first_plan, first_replan) = &plans[0][i];
            assert!(
                Arc::ptr_eq(planned, first_plan),
                "plan {i}: served copies instead of sharing"
            );
            assert!(
                Arc::ptr_eq(replanned, first_replan),
                "replan {i}: served copies instead of sharing"
            );
            // Bit-identity with serial compiles of the same inputs.
            assert_eq!(**planned, cold[i]);
            assert_eq!(**replanned, cold_degraded[i]);
        }
    }
}

#[test]
fn eviction_churn_keeps_every_request_accounted() {
    // A deliberately tiny service — one shard, capacity 2 — serving 6
    // unique keys from 8 threads: every round evicts entries that other
    // threads are about to ask for, so the cache churns continuously.
    // The accounting invariant must survive the churn: every single call
    // still lands in exactly one of hits/misses/partials/coalesced, and
    // the eviction counter explains where the missing entries went.
    const CHURN_THREADS: usize = 8;
    const ROUNDS: usize = 6;
    let irs: Vec<whale::WhaleIr> = [8, 16, 24, 32, 48, 64]
        .into_iter()
        .map(|b| strategies::data_parallel(models::resnet50(b).unwrap(), b).unwrap())
        .collect();
    let cluster = whale::Cluster::parse("4xV100").unwrap();
    let config = whale::PlannerConfig::default();
    let service = whale_planner::PlanService::new(1, 2);

    let cold: Vec<ExecutionPlan> = irs
        .iter()
        .map(|ir| whale::planner::plan(ir, &cluster, &config).unwrap())
        .collect();

    let barrier = Barrier::new(CHURN_THREADS);
    std::thread::scope(|scope| {
        for t in 0..CHURN_THREADS {
            let (service, irs, cold, cluster, config, barrier) =
                (&service, &irs, &cold, &cluster, &config, &barrier);
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    for k in 0..irs.len() {
                        let i = (k + t + round) % irs.len();
                        let p = service.plan(&irs[i], cluster, config).unwrap();
                        assert_eq!(*p, cold[i], "evicted-and-recompiled plan changed");
                    }
                }
            });
        }
    });

    let stats = service.stats();
    let issued = (CHURN_THREADS * ROUNDS * irs.len()) as u64;
    assert_eq!(
        stats.requests(),
        issued,
        "every request must be accounted under eviction churn: {stats}"
    );
    assert_eq!(
        stats.hits + stats.misses + stats.partial_hits + stats.coalesced,
        issued
    );
    // Capacity 2 with 6 live keys: the cache must actually have churned...
    assert!(
        stats.evictions > 0,
        "6 keys through a 2-entry cache must evict: {stats}"
    );
    assert!(
        stats.misses > irs.len() as u64,
        "evicted keys must recompile on their next request: {stats}"
    );
    // ...and the books must balance: everything ever inserted either got
    // evicted or is still resident.
    assert_eq!(
        stats.misses + stats.partial_hits,
        stats.evictions + service.len() as u64,
        "inserts = evictions + resident entries: {stats}"
    );
    assert!(service.len() <= 2, "capacity must be enforced");
}

#[test]
fn disabled_cache_still_serves_concurrently() {
    // With the cache off every plan is a cold compile — no sharing, no
    // stats, but identical bits.
    let irs = zoo();
    let session = Session::on_cluster("4xV100").unwrap().plan_cache(false);
    let cold: Vec<ExecutionPlan> = irs
        .iter()
        .map(|ir| whale::planner::plan(ir, session.cluster(), session.planner_config()).unwrap())
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let session = &session;
            let irs = &irs;
            let cold = &cold;
            scope.spawn(move || {
                for (ir, reference) in irs.iter().zip(cold) {
                    assert_eq!(*session.plan(ir).unwrap(), *reference);
                }
            });
        }
    });
    assert!(session.cache_stats().is_none());
}
