//! Dynamic heterogeneity: a throttled GPU inside a "homogeneous" allocation
//! (§2.2's motivation — users cannot know device behaviour at programming
//! time). Hardware-aware balancing must absorb the straggler.

use whale::{models, strategies, Session};
use whale_hardware::Cluster;

fn step_time(cluster: Cluster, hardware_aware: bool) -> f64 {
    let session = Session::new(cluster).hardware_aware(hardware_aware);
    let ir = strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap();
    session.step(&ir).unwrap().stats.step_time
}

#[test]
fn hardware_aware_dp_absorbs_a_straggler() {
    let mut degraded = Cluster::parse("1x(8xV100)").unwrap();
    // One V100 throttled to half throughput (thermal/noisy neighbour).
    degraded.degrade_gpu(3, 0.5).unwrap();

    let base = step_time(degraded.clone(), false);
    let aware = step_time(degraded, true);
    // Baseline is gated by the straggler: ~2x the healthy step. The aware
    // partition shrinks its batch instead.
    let speedup = base / aware;
    assert!((1.3..2.0).contains(&speedup), "straggler speedup {speedup}");
}

#[test]
fn straggler_gets_a_proportionally_smaller_batch() {
    let mut cluster = Cluster::parse("1x(4xV100)").unwrap();
    cluster.degrade_gpu(1, 0.5).unwrap();
    let session = Session::new(cluster).hardware_aware(true);
    let ir = strategies::data_parallel(models::resnet50(112).unwrap(), 112).unwrap();
    let plan = session.plan(&ir).unwrap();
    let batches: Vec<usize> = plan.stages[0]
        .devices
        .iter()
        .map(|d| d.samples_per_step)
        .collect();
    assert_eq!(batches.iter().sum::<usize>(), 112);
    // Healthy GPUs carry ~32, the throttled one ~16.
    assert!(batches[1] * 3 < batches[0] * 2, "batches {batches:?}");
}

#[test]
fn healthy_homogeneous_cluster_is_unaffected_by_awareness() {
    let a = step_time(Cluster::parse("1x(8xV100)").unwrap(), true);
    let b = step_time(Cluster::parse("1x(8xV100)").unwrap(), false);
    assert!((a - b).abs() / b < 1e-9, "no straggler → identical plans");
}

#[test]
fn degraded_pipeline_stage_rebalances() {
    use whale::strategies::pipeline_only;
    let mk = |aware: bool| {
        let mut cluster = Cluster::parse("1x(4xV100)").unwrap();
        cluster.degrade_gpu(2, 0.5).unwrap();
        let session = Session::new(cluster).hardware_aware(aware);
        let ir = pipeline_only(models::bert_large(128, 128).unwrap(), 128, 16).unwrap();
        session.step(&ir).unwrap().stats
    };
    let base = mk(false);
    let aware = mk(true);
    assert!(
        base.step_time / aware.step_time > 1.15,
        "stage rebalance speedup {:.3}",
        base.step_time / aware.step_time
    );
}
