//! The staged compile pipeline against the monolithic reference planner.
//!
//! The PR that introduced the pass pipeline (DegreeInference → Placement →
//! BridgeInsertion → Balance → Schedule) kept the original single-function
//! planner as `plan_reference`; these goldens pin bit-identical output
//! across the model zoo × cluster matrix. The cache/replan tests pin the
//! operational claims: a content hit runs zero passes, and a delta-replan
//! re-runs only the invalidated suffix while agreeing with a cold plan
//! wherever the elastic approximation promises it.

use whale::{models, strategies, Cluster, ClusterDelta, PlannerConfig, ScheduleKind, Session};
use whale_planner::{digest, plan, planner::plan_reference, CompilePipeline, PassId, PlanCache};
use whale_sim::{check_replan, SimConfig};

type IrCase = (&'static str, whale::WhaleIr);

fn model_zoo() -> Vec<IrCase> {
    vec![
        (
            "resnet50/dp",
            strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap(),
        ),
        (
            "bert_base/dp",
            strategies::data_parallel(models::bert_base(128, 64).unwrap(), 128).unwrap(),
        ),
        (
            "bert_large/pipeline_dp",
            strategies::pipeline_with_dp(models::bert_large(64, 64).unwrap(), 64, 8).unwrap(),
        ),
        (
            "gpt2_xl/pipeline",
            strategies::pipeline_only(models::gpt2_xl(32, 64).unwrap(), 32, 8).unwrap(),
        ),
        (
            "t5_large/pipeline_dp",
            strategies::pipeline_with_dp(models::t5_large(32, 64, 64).unwrap(), 32, 8).unwrap(),
        ),
        (
            "m6_10b/pipeline_dp",
            strategies::pipeline_with_dp(models::m6_10b(16).unwrap(), 16, 4).unwrap(),
        ),
        (
            "moe_hybrid",
            strategies::moe_hybrid(models::m6_moe(models::MoeConfig::tiny(), 64).unwrap(), 64)
                .unwrap(),
        ),
        (
            "imagenet/split_classifier",
            strategies::feature_dp_classifier_split(
                models::imagenet_100k(64).unwrap(),
                64,
                "fc_big",
            )
            .unwrap(),
        ),
    ]
}

const CLUSTERS: &[&str] = &[
    "4xV100",
    "8xV100+8xP100",
    "2x(8xV100)+2x(8xP100)",
    "2x(4xV100)",
];

fn configs() -> Vec<(&'static str, PlannerConfig)> {
    let base = PlannerConfig::default();
    vec![
        ("default", base.clone()),
        (
            "baseline",
            PlannerConfig {
                hardware_aware: false,
                ..base.clone()
            },
        ),
        (
            "gpipe",
            PlannerConfig {
                schedule: ScheduleKind::GPipe,
                ..base.clone()
            },
        ),
        (
            "unmemoized",
            PlannerConfig {
                memoize: false,
                ..base
            },
        ),
    ]
}

#[test]
fn pipeline_matches_reference_planner_bit_for_bit() {
    let mut compared = 0;
    for cluster_spec in CLUSTERS {
        let cluster = Cluster::parse(cluster_spec).unwrap();
        for (name, ir) in &model_zoo() {
            for (cfg_name, config) in &configs() {
                let label = format!("{name} @ {cluster_spec} [{cfg_name}]");
                let reference = plan_reference(ir, &cluster, config);
                let staged = plan(ir, &cluster, config);
                match (reference, staged) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "{label}: staged pipeline diverged");
                        assert_eq!(digest(&a), digest(&b), "{label}: digest diverged");
                        compared += 1;
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a.to_string(), b.to_string(), "{label}: errors diverged");
                    }
                    (a, b) => panic!("{label}: one planner failed: ref {a:?} vs staged {b:?}"),
                }
            }
        }
    }
    assert!(compared >= 100, "matrix shrank: only {compared} plans");
}

#[test]
fn pass_order_is_declared_and_enforced() {
    let ids = CompilePipeline::standard().pass_ids();
    assert_eq!(
        ids,
        vec![
            PassId::DegreeInference,
            PassId::Placement,
            PassId::BridgeInsertion,
            PassId::Balance,
            PassId::Schedule,
            PassId::CommOpt,
        ]
    );
}

#[test]
fn cache_hit_runs_zero_passes_across_the_zoo() {
    let cluster = Cluster::parse("8xV100+8xP100").unwrap();
    let config = PlannerConfig::default();
    let mut cache = PlanCache::default();
    for (name, ir) in &model_zoo() {
        let cold = cache.plan(ir, &cluster, &config).unwrap();
        let passes_after_miss = cache.stats().passes_run;
        let hit = cache.plan(ir, &cluster, &config).unwrap();
        assert_eq!(cold, hit, "{name}: cache returned a different plan");
        assert_eq!(
            cache.stats().passes_run,
            passes_after_miss,
            "{name}: a cache hit ran compile passes"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.hits as usize, model_zoo().len());
    assert_eq!(stats.misses as usize, model_zoo().len());
}

#[test]
fn structural_replan_equals_cold_plan_on_the_new_cluster() {
    let cluster = Cluster::parse("8xV100+8xP100").unwrap();
    let config = PlannerConfig::default();
    let ir = strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap();

    let mut cache = PlanCache::default();
    cache.plan(&ir, &cluster, &config).unwrap();
    let (replanned, after) = cache
        .replan(&ir, &cluster, &config, ClusterDelta::GpuRemoved { id: 15 })
        .unwrap();
    assert_eq!(after.num_gpus(), 15);
    let cold = plan(&ir, &after, &config).unwrap();
    assert_eq!(*replanned, cold, "structural replan must re-run everything");
}

#[test]
fn link_bandwidth_replan_keeps_the_plan_and_moves_the_simulation() {
    use whale_hardware::LinkKind;
    let ir = strategies::pipeline_with_dp(models::bert_large(64, 64).unwrap(), 64, 8).unwrap();
    let mut s = Session::on_cluster("2x(4xV100)").unwrap();
    let before_plan = s.plan(&ir).unwrap();
    let before_sim = s.step_plan(&before_plan).unwrap();
    let after_plan = s
        .replan(
            &ir,
            ClusterDelta::LinkBandwidth {
                kind: LinkKind::Network,
                bytes_per_sec: 1e9,
            },
        )
        .unwrap();
    // Plans carry no bandwidths: the plan is unchanged, but simulating it on
    // the updated cluster sees the slower network.
    assert_eq!(before_plan, after_plan);
    let after_sim = s.step_plan(&after_plan).unwrap();
    assert!(
        after_sim.stats.step_time > before_sim.stats.step_time,
        "slower cross-node link must slow the simulated step"
    );
}

#[test]
fn session_replan_chain_stays_consistent() {
    let ir = strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap();
    let mut s = Session::on_cluster("8xV100+8xP100").unwrap();
    let mut prev = s.plan(&ir).unwrap();
    let deltas = vec![
        ClusterDelta::GpuDegraded { id: 3, scale: 0.5 },
        ClusterDelta::GpuDegraded { id: 9, scale: 0.7 },
        ClusterDelta::GpuRestored { id: 3 },
    ];
    for delta in deltas {
        let next = s.replan(&ir, delta).unwrap();
        let report = check_replan(&prev, &next, s.cluster(), &SimConfig::default());
        assert!(
            report.is_consistent(),
            "after {delta:?}: {:?}",
            report.issues
        );
        prev = next;
    }
    let stats = s.cache_stats().unwrap();
    assert_eq!(stats.misses, 1);
    assert!(
        stats.partial_hits >= 2,
        "degradations should be partial hits"
    );
}

#[test]
fn replanned_cluster_state_is_a_pure_hit_afterwards() {
    let ir = strategies::data_parallel(models::resnet50(256).unwrap(), 256).unwrap();
    let mut s = Session::on_cluster("4xV100").unwrap();
    s.plan(&ir).unwrap();
    let replanned = s
        .replan(&ir, ClusterDelta::GpuDegraded { id: 0, scale: 0.5 })
        .unwrap();
    // The replan seeded the cache under the post-delta key: planning again
    // on the (now updated) session cluster is a pure hit.
    let hits_before = s.cache_stats().unwrap().hits;
    let again = s.plan(&ir).unwrap();
    assert_eq!(replanned, again);
    assert_eq!(s.cache_stats().unwrap().hits, hits_before + 1);
}
