//! Golden equivalence: the event-driven heap scheduler must reproduce the
//! polling reference scheduler's `StepOutcome` — timeline and stats —
//! bit for bit, for every strategy shape in the model zoo and every
//! pipeline schedule. The polling scheduler stays alive only as this
//! oracle (and as `fastpath_bench`'s "before" arm) and is deleted once the
//! heap engine has soaked for a few PRs.

use whale::{models, strategies, ScheduleKind, Session, WhaleIr};

/// Plan `ir` on `session`, then simulate it through both schedulers and
/// demand identical outcomes.
fn assert_schedulers_agree(session: &Session, ir: &WhaleIr, label: &str) {
    let plan = session
        .plan(ir)
        .unwrap_or_else(|e| panic!("{label}: plan failed: {e}"));
    let heap = session
        .step_plan(&plan)
        .unwrap_or_else(|e| panic!("{label}: heap sim failed: {e}"));
    let polling = session
        .step_plan_reference(&plan)
        .unwrap_or_else(|e| panic!("{label}: polling sim failed: {e}"));
    assert_eq!(
        heap.timeline, polling.timeline,
        "{label}: timelines diverge between heap and polling schedulers"
    );
    assert_eq!(
        heap.stats, polling.stats,
        "{label}: stats diverge between heap and polling schedulers"
    );
}

#[test]
fn data_parallel_plans_match() {
    for aware in [true, false] {
        let session = Session::on_cluster("8xV100+8xP100")
            .unwrap()
            .hardware_aware(aware);
        let ir = strategies::data_parallel(models::resnet50(128).unwrap(), 128).unwrap();
        assert_schedulers_agree(&session, &ir, &format!("dp resnet50 aware={aware}"));
    }
}

#[test]
fn pipeline_plans_match_under_every_schedule() {
    for schedule in [
        ScheduleKind::BackwardFirst,
        ScheduleKind::GPipe,
        ScheduleKind::AsyncNoFlush,
    ] {
        let session = Session::on_cluster("4xV100").unwrap().schedule(schedule);
        let ir = strategies::pipeline_only(models::bert_base(32, 64).unwrap(), 32, 8).unwrap();
        assert_schedulers_agree(&session, &ir, &format!("pipeline bert_base {schedule:?}"));
    }
}

#[test]
fn deep_heterogeneous_pipeline_matches() {
    // Many stages × many micro batches is where the polling scheduler's
    // rescan cost explodes — and where a subtle ordering bug would surface.
    let session = Session::on_cluster("8xV100+8xP100").unwrap();
    let ir = strategies::pipeline_only(models::bert_large(64, 128).unwrap(), 64, 32).unwrap();
    assert_schedulers_agree(&session, &ir, "deep hetero pipeline bert_large");
}

#[test]
fn hybrid_pipeline_with_outer_dp_matches() {
    let session = Session::on_cluster("2x(4xV100)").unwrap().outer_dp(2);
    let ir = strategies::pipeline_with_dp(models::bert_base(64, 64).unwrap(), 64, 4).unwrap();
    assert_schedulers_agree(&session, &ir, "hybrid pipeline×DP bert_base");
}

#[test]
fn moe_hybrid_matches() {
    let session = Session::on_cluster("4xV100").unwrap();
    let g = models::m6_moe(models::MoeConfig::tiny(), 16).unwrap();
    let ir = strategies::moe_hybrid(g, 16).unwrap();
    assert_schedulers_agree(&session, &ir, "moe hybrid m6_moe tiny");
}

#[test]
fn vanilla_model_parallel_matches() {
    let session = Session::on_cluster("2xV100").unwrap();
    let g = models::bert_base(16, 64).unwrap();
    let cut = g.len() / 2;
    let ir = strategies::vanilla_model_parallel(g, 16, cut).unwrap();
    assert_schedulers_agree(&session, &ir, "vanilla model parallel bert_base");
}
