#!/usr/bin/env bash
# Diff a freshly generated BENCH_comm.json against the committed baseline and
# flag per-cell step-time regressions greater than THRESHOLD percent
# (default 10). Cells are keyed by (model, cluster) for the fp32 sweep and
# (model, cluster, dtype) for the mixed-precision sweep, so a regression in
# any arm is caught even when the medians still clear their gates.
#
# Usage:
#   scripts/bench_diff.sh              # re-run comm_bench, then diff vs HEAD
#   scripts/bench_diff.sh fresh.json   # diff an existing artifact vs HEAD
#   THRESHOLD=5 scripts/bench_diff.sh  # tighter tolerance
#
# Exit status: 0 when no cell regressed past the threshold, 1 otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-10}"
command -v jq >/dev/null || { echo "bench_diff: jq not found" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

baseline="$tmp/baseline.json"
if ! git show HEAD:BENCH_comm.json > "$baseline" 2>/dev/null; then
  echo "bench_diff: no committed BENCH_comm.json at HEAD" >&2
  exit 2
fi

fresh="${1:-}"
if [[ -z "$fresh" ]]; then
  echo "bench_diff: regenerating BENCH_comm.json (release run, asserts its own gates)..."
  cargo run -q --release --offline -p whale-bench --bin comm_bench >/dev/null
  fresh=BENCH_comm.json
fi
[[ -r "$fresh" ]] || { echo "bench_diff: cannot read $fresh" >&2; exit 2; }

jq -n -r --argjson thr "$THRESHOLD" \
  --slurpfile base "$baseline" --slurpfile fresh "$fresh" '
  # One flat {cell key -> step seconds} map per document: the fp32 sweep
  # keys on (model, cluster); mixed-precision cells append the dtype.
  def cellmap(d):
    [ (d.cells // [])[]
        | {key: "\(.model) @ \(.cluster)", value: .bucketed_step_s} ]
    + [ (d.mixed_precision_cells // [])[]
        | {key: "\(.model) @ \(.cluster) [\(.grad_dtype)]", value: .step_s} ]
    | from_entries;
  cellmap($base[0]) as $b | cellmap($fresh[0]) as $f |
  [ $f | to_entries[] | select($b[.key] != null)
      | {cell: .key, base: $b[.key], fresh: .value,
         pct: ((.value / $b[.key] - 1) * 100)} ] as $rows |
  ($rows | map(select(.pct > $thr))) as $regressions |
  ( $rows[] | "\(if .pct > $thr then "REGRESSION" else "ok" end)\t\(.cell)\t" +
      "\(.base | tostring | .[0:8])s -> \(.fresh | tostring | .[0:8])s\t" +
      "\(.pct | . * 100 | round / 100)%" ),
  "---",
  "\($rows | length) cell(s) compared, \($regressions | length) regression(s) over \($thr)%",
  ( [ $f | keys[] | select($b[.] == null) ] | select(length > 0)
      | "new cells (no baseline): \(join(", "))" ) // empty,
  ( [ $b | keys[] | select($f[.] == null) ] | select(length > 0)
      | "dropped cells (baseline only): \(join(", "))" ) // empty,
  (if ($regressions | length) > 0 then "FAIL" else "PASS" end)
' | {
  status=0
  while IFS= read -r line; do
    case "$line" in
      FAIL) status=1 ;;
      PASS) ;;
      *) printf '%s\n' "$line" ;;
    esac
  done
  exit "$status"
}
