#!/usr/bin/env bash
# Diff freshly generated bench artifacts against the committed baselines and
# flag per-cell regressions greater than THRESHOLD percent (default 10).
#
# Covered artifacts:
#   BENCH_comm.json   — comm-optimizer sweep; cells keyed by (model, cluster)
#                       for the fp32 sweep and (model, cluster, dtype) for the
#                       mixed-precision sweep, compared on step seconds.
#   BENCH_search.json — branch-and-bound strategy search; cells keyed by
#                       (model, cluster), compared on best-found seconds per
#                       sample (inverse throughput), so a cell whose search
#                       stops finding its winner is caught even when the
#                       aggregate gates still pass.
#
# Usage:
#   scripts/bench_diff.sh                      # re-run both benches, diff vs HEAD
#   scripts/bench_diff.sh comm.json search.json  # diff existing artifacts
#   THRESHOLD=5 scripts/bench_diff.sh          # tighter tolerance
#
# Exit status: 0 when no cell regressed past the threshold, 1 otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${THRESHOLD:-10}"
command -v jq >/dev/null || { echo "bench_diff: jq not found" >&2; exit 2; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
status=0

# diff_cells <baseline> <fresh> <jq cellmap expr> — compare two artifacts on
# a flat {cell -> lower-is-better metric} map produced by the jq expression.
diff_cells() {
  local baseline="$1" fresh="$2" cellmap="$3"
  jq -n -r --argjson thr "$THRESHOLD" \
    --slurpfile base "$baseline" --slurpfile fresh "$fresh" "
    def cellmap(d): $cellmap;
    "'cellmap($base[0]) as $b | cellmap($fresh[0]) as $f |
    [ $f | to_entries[] | select($b[.key] != null)
        | {cell: .key, base: $b[.key], fresh: .value,
           pct: ((.value / $b[.key] - 1) * 100)} ] as $rows |
    ($rows | map(select(.pct > $thr))) as $regressions |
    ( $rows[] | "\(if .pct > $thr then "REGRESSION" else "ok" end)\t\(.cell)\t" +
        "\(.base | tostring | .[0:8])s -> \(.fresh | tostring | .[0:8])s\t" +
        "\(.pct | . * 100 | round / 100)%" ),
    "---",
    "\($rows | length) cell(s) compared, \($regressions | length) regression(s) over \($thr)%",
    ( [ $f | keys[] | select($b[.] == null) ] | select(length > 0)
        | "new cells (no baseline): \(join(", "))" ) // empty,
    ( [ $b | keys[] | select($f[.] == null) ] | select(length > 0)
        | "dropped cells (baseline only): \(join(", "))" ) // empty,
    (if ($regressions | length) > 0 then "FAIL" else "PASS" end)
  ' | {
    local section_status=0
    while IFS= read -r line; do
      case "$line" in
        FAIL) section_status=1 ;;
        PASS) ;;
        *) printf '%s\n' "$line" ;;
      esac
    done
    return "$section_status"
  }
}

# --- comm optimizer ---------------------------------------------------------
comm_baseline="$tmp/comm_baseline.json"
if git show HEAD:BENCH_comm.json > "$comm_baseline" 2>/dev/null; then
  comm_fresh="${1:-}"
  if [[ -z "$comm_fresh" ]]; then
    echo "bench_diff: regenerating BENCH_comm.json (release run, asserts its own gates)..."
    cargo run -q --release --offline -p whale-bench --bin comm_bench >/dev/null
    comm_fresh=BENCH_comm.json
  fi
  [[ -r "$comm_fresh" ]] || { echo "bench_diff: cannot read $comm_fresh" >&2; exit 2; }
  echo "== BENCH_comm.json (step seconds per cell)"
  diff_cells "$comm_baseline" "$comm_fresh" '
    [ (d.cells // [])[]
        | {key: "\(.model) @ \(.cluster)", value: .bucketed_step_s} ]
    + [ (d.mixed_precision_cells // [])[]
        | {key: "\(.model) @ \(.cluster) [\(.grad_dtype)]", value: .step_s} ]
    | from_entries' || status=1
else
  echo "bench_diff: no committed BENCH_comm.json at HEAD (skipping)" >&2
fi

# --- strategy search --------------------------------------------------------
search_baseline="$tmp/search_baseline.json"
if git show HEAD:BENCH_search.json > "$search_baseline" 2>/dev/null; then
  search_fresh="${2:-}"
  if [[ -z "$search_fresh" ]]; then
    echo "bench_diff: regenerating BENCH_search.json (release run, asserts its own gates)..."
    cargo run -q --release --offline -p whale-bench --bin search_bench >/dev/null
    search_fresh=BENCH_search.json
  fi
  [[ -r "$search_fresh" ]] || { echo "bench_diff: cannot read $search_fresh" >&2; exit 2; }
  echo "== BENCH_search.json (best-found seconds per sample per cell)"
  diff_cells "$search_baseline" "$search_fresh" '
    [ (d.cells // [])[]
        | {key: "\(.model) @ \(.cluster)", value: (1 / .search.throughput)} ]
    | from_entries' || status=1
else
  echo "bench_diff: no committed BENCH_search.json at HEAD (skipping)" >&2
fi

exit "$status"
