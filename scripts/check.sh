#!/usr/bin/env bash
# Tier-1 verification: build, test, and style gate for the whole workspace.
# Run from the repo root (or let the cd below handle it). Offline by design —
# the workspace has no network-fetched dev dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
cargo clippy --workspace --all-targets --offline -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

# Concurrent-serving smoke test: small workload, asserts single-flight and
# counter consistency; no performance threshold (see EXPERIMENTS.md for the
# full sweep).
cargo run -q --release --offline -p whale-bench --bin serve_bench -- --quick

# Comm-optimizer smoke test: asserts fusion-off bit-identity, bucket
# telescoping, a >1x bucketed speedup on a bandwidth-bound cluster, and one
# mixed-precision cell (bf16 wire bytes telescope to half the payload and
# beat fp32 bucketed on a saturated network); the gated sweep lives in
# comm_bench's default mode (see EXPERIMENTS.md). To compare a fresh
# BENCH_comm.json against the committed baseline, run scripts/bench_diff.sh.
cargo run -q --release --offline -p whale-bench --bin comm_bench -- --quick

# Interned-core smoke test: shrunken zoo pair, asserts interned-vs-flat
# plan/fingerprint bit-identity and the allocation gates on the warm-interner
# hot path; the 4x trillion-scale speedup gate is compile_bench's default
# mode (see DESIGN.md §12).
cargo run -q --release --offline -p whale-bench --bin compile_bench -- --quick

# Fleet smoke test: shrunken multi-tenant run (elastic + kill-and-requeue on
# the same churn) plus a small concurrent compile burst; asserts bounded
# recovery, zero failed jobs, and zero hung burst requests. The 1.5x elastic
# goodput gate is fleet_bench's default mode (see EXPERIMENTS.md).
cargo run -q --release --offline -p whale-bench --bin fleet_bench -- --quick

# Strategy-search smoke test: 3-model single-cluster matrix; asserts the
# branch-and-bound search never loses a cell to the narrow enumeration,
# strictly beats it somewhere, bounds >=50% of leaves without planning, and
# stays within a noise-padded wall-clock ratio. The full gated matrix
# (<=3x wall clock over >=20x the strategies) is search_bench's default
# mode and its artifact BENCH_search.json is committed; compare against
# the baseline with scripts/bench_diff.sh.
cargo run -q --release --offline -p whale-bench --bin search_bench -- --quick
